//! The persisted benchmark snapshot (`BENCH_sim.json`).
//!
//! [`run_snapshot`] executes a pinned scenario suite — homogeneous and
//! heterogeneous platforms × UMR / RUMR / Factoring / MI × fault-free and
//! Poisson-faulty — through the buffer-reusing [`ScenarioRunner`]
//! (`rumr::ScenarioRunner`) and measures engine throughput (ns/event,
//! runs/sec) per case, in both repetition strategies (the sequential
//! per-seed loop and the column-batched [`ScenarioRunner::execute_batch`]
//! pass), plus the analytic fast path against the engine on the pinned
//! error-free cases, plus the wall time of a reduced sweep under
//! [`TraceMode::Off`] vs [`TraceMode::Full`]. The result serializes to a
//! small JSON document with machine and commit metadata so successive
//! commits can be compared (`docs/BENCHMARKS.md`).
//!
//! No serde: the JSON is emitted by hand and re-parsed for schema
//! validation by a deliberately minimal recursive-descent parser
//! ([`validate_snapshot_json`]), which CI runs against the artifact.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use rumr::{
    FastPath, FaultModel, PoissonFaults, QueueBackend, RecoveryConfig, RepColumns, RumrConfig,
    RunSpec, Scenario, SchedulerKind, SimConfig, SpeedModel, TraceMode,
};

use crate::grid::Table1Grid;
use crate::json::{json_escape, json_num, parse_json, Json};
use crate::sweep::{run_sweep, Competitor, ErrorModelKind, SweepConfig};

/// Version of the `BENCH_sim.json` schema this module writes.
/// [`validate_snapshot_json`] still accepts version-1 documents (which
/// predate the `queue` case field and the `sweep_threads` machine field),
/// version-2 documents (which predate the `speed_robust` section) and
/// version-3 documents (which predate the per-case `mode` field and the
/// `fastpath` section).
pub const SCHEMA_VERSION: u64 = 4;

/// Error magnitude used by every pinned case.
const CASE_ERROR: f64 = 0.3;

/// Which event-queue backends a snapshot measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueSelection {
    /// Binary-heap backend only.
    Heap,
    /// Calendar-queue backend only.
    Calendar,
    /// Both backends, heap first (the default: per-backend rows make the
    /// snapshot self-contained for backend comparisons).
    #[default]
    Both,
}

impl QueueSelection {
    /// Parse `heap` / `calendar` / `both`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueSelection::Heap),
            "calendar" => Some(QueueSelection::Calendar),
            "both" => Some(QueueSelection::Both),
            _ => None,
        }
    }

    /// The concrete backends to measure, in snapshot row order.
    pub fn backends(self) -> &'static [QueueBackend] {
        match self {
            QueueSelection::Heap => &[QueueBackend::Heap],
            QueueSelection::Calendar => &[QueueBackend::Calendar],
            QueueSelection::Both => &[QueueBackend::Heap, QueueBackend::Calendar],
        }
    }
}

/// How much work each part of the snapshot does.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotConfig {
    /// Timed repetitions per engine case.
    pub case_reps: u64,
    /// Repetitions per cell in the Off-vs-Full sweep comparison.
    pub sweep_reps: u64,
    /// Event-queue backends to measure.
    pub queues: QueueSelection,
}

impl SnapshotConfig {
    /// The default measurement budget (a few seconds of wall time).
    pub fn standard() -> Self {
        SnapshotConfig {
            case_reps: 200,
            sweep_reps: 40,
            queues: QueueSelection::Both,
        }
    }

    /// A reduced budget for CI smoke runs (sub-second).
    pub fn quick() -> Self {
        SnapshotConfig {
            case_reps: 10,
            sweep_reps: 2,
            queues: QueueSelection::Both,
        }
    }
}

/// How a case's repetitions were driven through the engine (schema v4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaseMode {
    /// One [`ScenarioRunner::execute_at`] call per seed — the historical
    /// repetition loop (`ScenarioRunner` is `rumr::ScenarioRunner`).
    #[default]
    Sequential,
    /// One [`ScenarioRunner::execute_batch`] pass per timed batch,
    /// appending rows to reused [`RepColumns`] buffers.
    Batched,
}

impl CaseMode {
    /// Stable JSON value of the `mode` case field.
    pub fn name(self) -> &'static str {
        match self {
            CaseMode::Sequential => "sequential",
            CaseMode::Batched => "batched",
        }
    }

    /// Parse the stable JSON value back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sequential" => Some(CaseMode::Sequential),
            "batched" => Some(CaseMode::Batched),
            _ => None,
        }
    }
}

/// Throughput measurement of one pinned case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case label, `<platform>/<scheduler>/<faults>`.
    pub name: String,
    /// Event-queue backend the case ran on.
    pub queue: QueueBackend,
    /// Repetition strategy the case ran under.
    pub mode: CaseMode,
    /// Timed repetitions.
    pub runs: u64,
    /// Engine events processed across all timed runs.
    pub events: u64,
    /// Wall time of the timed runs, seconds.
    pub wall_s: f64,
    /// Nanoseconds per engine event.
    pub ns_per_event: f64,
    /// Completed simulations per second.
    pub runs_per_sec: f64,
    /// Mean makespan over the timed runs (sanity anchor, not a timing).
    pub mean_makespan: f64,
}

/// Wall-time comparison of one pinned sweep under `TraceMode::Off` vs
/// `TraceMode::Full`.
#[derive(Debug, Clone)]
pub struct SweepComparison {
    /// Cells in the pinned sweep grid.
    pub cells: u64,
    /// Repetitions per cell.
    pub reps: u64,
    /// Wall seconds with [`TraceMode::Off`].
    pub off_s: f64,
    /// Wall seconds with [`TraceMode::Full`] (trace recorded and trace
    /// metrics derived per run, as a trace consumer would).
    pub full_s: f64,
    /// `full_s / off_s` — the throughput factor bought by turning tracing
    /// off.
    pub speedup: f64,
}

/// One complete benchmark snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Unix timestamp (seconds) of the measurement.
    pub created_unix: u64,
    /// Hostname of the measuring machine.
    pub host: String,
    /// Logical CPUs reported by the OS (0 when `available_parallelism`
    /// fails — unknown, not a fabricated 1).
    pub cpus: u64,
    /// Worker threads the pinned sweep comparison actually used. The
    /// timings in [`Snapshot::sweep`] are only comparable across machines
    /// at equal thread counts, so the count is recorded rather than
    /// inferred from `cpus`.
    pub sweep_threads: u64,
    /// `git rev-parse HEAD` of the measured tree, or `"unknown"`.
    pub commit: String,
    /// Peak resident set size of the process, bytes (`VmHWM`; 0 where
    /// `/proc` is unavailable).
    pub peak_rss_bytes: u64,
    /// Per-case engine throughput, one row per (backend, mode, case).
    pub cases: Vec<CaseResult>,
    /// Fast-path-vs-engine throughput on the pinned error-free cases.
    pub fastpath: Vec<FastPathRow>,
    /// Robustness ratios of the pinned speed-revelation sweep, one row
    /// per (speed profile, scheduler).
    pub speed_robust: Vec<SpeedRobustRow>,
    /// The Off-vs-Full sweep comparison.
    pub sweep: SweepComparison,
}

/// Throughput of the analytic fast path against the engine on one pinned
/// error-free case (schema v4 `fastpath` section).
#[derive(Debug, Clone)]
pub struct FastPathRow {
    /// Case label, `<platform>/<scheduler>`.
    pub name: String,
    /// Analytic resolutions timed.
    pub answers: u64,
    /// Nanoseconds per analytic answer ([`FastPath::resolve`]).
    pub ns_per_answer: f64,
    /// Nanoseconds per full engine run of the same request.
    pub engine_ns_per_run: f64,
    /// `engine_ns_per_run / ns_per_answer` — the factor the fast path
    /// buys over simulating.
    pub speedup: f64,
    /// Relative residual of the analytic makespan against the engine's
    /// (must sit within the oracle's stated tolerance).
    pub residual: f64,
}

/// Mean robustness of one scheduler under one speed-revelation profile in
/// the pinned speed-robust sweep.
#[derive(Debug, Clone)]
pub struct SpeedRobustRow {
    /// Speed-model label ([`SpeedModel::label`]).
    pub profile: String,
    /// Competitor label.
    pub scheduler: String,
    /// Mean robustness ratio (realized / clairvoyant makespan, ≥ 1).
    pub mean_ratio: f64,
    /// Mean realized makespan.
    pub mean_makespan: f64,
}

/// One entry of the pinned suite: a fully specified (scenario, scheduler,
/// fault regime) triple. Shared by the benchmark snapshot and the
/// conformance audit so both always measure the same 16 cases.
pub struct CaseSpec {
    /// Stable case identifier, `<platform>/<scheduler>/<fault regime>`.
    pub name: String,
    /// Platform + workload + error model.
    pub scenario: Scenario,
    /// Scheduling algorithm under test.
    pub kind: SchedulerKind,
    /// Whether the case runs under [`pinned_faults`].
    pub faulty: bool,
}

/// The pinned suite: 2 platforms × 4 schedulers × {fault-free, faulty}.
pub fn pinned_cases() -> Vec<CaseSpec> {
    let homog = || Scenario::table1(20, 1.6, 0.3, 0.2, CASE_ERROR);
    let het = || Scenario::heterogeneous_demo(20, CASE_ERROR);
    let homog_kinds: [(&'static str, SchedulerKind); 4] = [
        ("umr", SchedulerKind::Umr),
        ("rumr", SchedulerKind::rumr_known_error(CASE_ERROR)),
        ("factoring", SchedulerKind::Factoring),
        ("mi3", SchedulerKind::Mi { installments: 3 }),
    ];
    let het_kinds: [(&'static str, SchedulerKind); 4] = [
        ("umr", SchedulerKind::HetUmr),
        (
            "rumr",
            SchedulerKind::HetRumr(RumrConfig::with_known_error(CASE_ERROR)),
        ),
        ("factoring", SchedulerKind::Factoring),
        // MI's closed-form planner is homogeneous-only; GSS stands in as
        // the fourth family on the heterogeneous platform.
        ("gss", SchedulerKind::Gss),
    ];
    let mut cases = Vec::new();
    for faulty in [false, true] {
        for (label, kind) in &homog_kinds {
            cases.push(CaseSpec {
                name: case_name("homogeneous", label, faulty),
                scenario: homog(),
                kind: *kind,
                faulty,
            });
        }
        for (label, kind) in &het_kinds {
            cases.push(CaseSpec {
                name: case_name("heterogeneous", label, faulty),
                scenario: het(),
                kind: *kind,
                faulty,
            });
        }
    }
    cases
}

fn case_name(platform: &str, sched: &str, faulty: bool) -> String {
    format!(
        "{platform}/{sched}/{}",
        if faulty { "faulty" } else { "fault-free" }
    )
}

/// The Poisson fault process of the faulty cases: recoverable crashes,
/// frequent enough that every run sees several.
pub fn pinned_faults() -> FaultModel {
    FaultModel::Poisson(PoissonFaults {
        mttf: 60.0,
        mttr: Some(15.0),
        link_mtbf: None,
        horizon: 2000.0,
        seed: 11,
    })
}

/// The pinned sweep used for the Off-vs-Full comparison: 4 Table 1 points
/// × 3 error values × 4 competitors, single-threaded so the two timings
/// are comparable.
pub fn snapshot_sweep_config(reps: u64, trace_mode: TraceMode) -> SweepConfig {
    SweepConfig {
        grid: Table1Grid {
            n_values: vec![10, 20],
            ratio_values: vec![1.5],
            clat_values: vec![0.2],
            nlat_values: vec![0.2, 0.6],
        },
        errors: vec![0.04, 0.24, 0.44],
        reps,
        root_seed: 20030623,
        threads: 1,
        model: ErrorModelKind::Normal,
        w_total: 1000.0,
        progress: false,
        trace_mode,
        queue_backend: QueueBackend::default(),
        speeds: SpeedModel::Declared,
        audit: false,
    }
}

/// Competitors of the pinned sweep.
fn sweep_competitors() -> Vec<Competitor> {
    vec![
        Competitor::RumrKnown,
        Competitor::Umr,
        Competitor::Mi(3),
        Competitor::Factoring,
    ]
}

/// The pinned speed-revelation profiles of the snapshot's `speed_robust`
/// section (the declared identity is deliberately absent — it has no
/// robustness question to answer).
pub fn pinned_speed_profiles() -> Vec<SpeedModel> {
    vec![
        SpeedModel::Stochastic {
            spread: 0.25,
            seed: 23,
        },
        SpeedModel::Sandbagged {
            fraction: 0.25,
            slowdown: 2.0,
            seed: 23,
        },
        SpeedModel::Adversarial {
            fraction: 0.25,
            slowdown: 2.0,
        },
    ]
}

/// Competitors of the pinned speed-robust sweep: the paper's headliners
/// plus the one-round baseline, the most commitment-heavy plan.
fn speed_competitors() -> Vec<Competitor> {
    vec![
        Competitor::RumrKnown,
        Competitor::Umr,
        Competitor::Factoring,
        Competitor::OneRound,
    ]
}

/// One pinned grid point per profile keeps the section cheap; the audit
/// stays on so a revelation that broke an engine invariant would fail the
/// snapshot loudly rather than ship a corrupt number.
fn measure_speed_robust(reps: u64) -> Vec<SpeedRobustRow> {
    let competitors = speed_competitors();
    let mut rows = Vec::new();
    for profile in pinned_speed_profiles() {
        let mut config = snapshot_sweep_config(reps, TraceMode::Off);
        config.grid = Table1Grid {
            n_values: vec![20],
            ratio_values: vec![1.5],
            clat_values: vec![0.2],
            nlat_values: vec![0.2],
        };
        config.errors = vec![0.24];
        config.speeds = profile;
        config.audit = true;
        let result = run_sweep(&config, &competitors);
        for cell in &result.cells {
            assert_eq!(
                cell.audit_findings,
                0,
                "speed-robust sweep must audit clean under {}",
                profile.label()
            );
            let ratios = cell
                .robustness
                .as_ref()
                .expect("active profile yields ratios");
            for (c, competitor) in competitors.iter().enumerate() {
                rows.push(SpeedRobustRow {
                    profile: profile.label(),
                    scheduler: competitor.label(),
                    mean_ratio: ratios[c],
                    mean_makespan: cell.means[c],
                });
            }
        }
    }
    rows
}

/// The [`RunSpec`] of one pinned case on one backend (before the
/// prototype is attached).
fn case_run_spec(spec: &CaseSpec, backend: QueueBackend) -> RunSpec {
    let config = SimConfig {
        trace_mode: TraceMode::Off,
        faults: if spec.faulty {
            pinned_faults()
        } else {
            FaultModel::None
        },
        queue_backend: backend,
        ..SimConfig::default()
    };
    let mut run = RunSpec::new(spec.kind).config(config);
    if spec.faulty {
        run = run.recovering(RecoveryConfig::default());
    }
    run
}

fn measure_case(spec: &CaseSpec, reps: u64, backend: QueueBackend, mode: CaseMode) -> CaseResult {
    let run_spec = case_run_spec(spec, backend);
    let mut runner = spec.scenario.runner(run_spec.config.clone());
    // Both modes stamp repetitions out of one pre-planned prototype, so
    // the timed loops compare engine throughput, not planner cost.
    let proto = runner
        .prototype(&spec.kind)
        .unwrap_or_else(|e| panic!("snapshot case {} failed to plan: {e}", spec.name));
    let run_spec = run_spec.with_prototype(proto);
    // Warm the engine's buffers so the timed loop measures the steady
    // state (`u64::MAX - 1` keeps the seed disjoint from the timed ones).
    runner
        .execute_at(&run_spec, u64::MAX - 1)
        .unwrap_or_else(|e| panic!("snapshot case {} failed: {e}", spec.name));
    let mut cols = RepColumns::new();

    // The reps are timed in batches and the *fastest batch* yields the
    // ns/event and runs/sec figures — on a shared machine the minimum of
    // repeated timings is the least noise-contaminated estimate of the
    // true cost (same rationale as the sweep comparison's best-of-3).
    // Every seed still runs exactly once: `events`, `wall_s` and
    // `mean_makespan` aggregate all batches, so the result fields stay
    // deterministic.
    let batches = 3.min(reps);
    let mut events = 0u64;
    let mut makespan_sum = 0.0;
    let mut wall_s = 0.0;
    let mut ns_per_event = f64::INFINITY;
    let mut runs_per_sec = 0.0f64;
    let mut seed = 0u64;
    for batch in 0..batches {
        let batch_reps = reps / batches + u64::from(batch < reps % batches);
        let mut batch_events = 0u64;
        let batch_wall = match mode {
            CaseMode::Sequential => {
                let start = Instant::now();
                for _ in 0..batch_reps {
                    let result = runner
                        .execute_at(&run_spec, seed)
                        .unwrap_or_else(|e| panic!("snapshot case {} failed: {e}", spec.name));
                    seed += 1;
                    batch_events += result.events;
                    makespan_sum += result.makespan;
                }
                start.elapsed().as_secs_f64()
            }
            CaseMode::Batched => {
                let batch_spec = run_spec.clone().seed(seed).reps(batch_reps);
                cols.clear();
                let start = Instant::now();
                runner
                    .execute_batch(&batch_spec, &mut cols)
                    .unwrap_or_else(|e| panic!("snapshot case {} failed: {e}", spec.name));
                let batch_wall = start.elapsed().as_secs_f64();
                seed += batch_reps;
                batch_events += cols.total_events();
                // Summed in insertion (seed) order — bit-identical to the
                // sequential accumulation.
                makespan_sum += cols.makespan.iter().sum::<f64>();
                batch_wall
            }
        };
        events += batch_events;
        wall_s += batch_wall;
        ns_per_event = ns_per_event.min(batch_wall * 1e9 / batch_events.max(1) as f64);
        runs_per_sec = runs_per_sec.max(batch_reps as f64 / batch_wall.max(1e-12));
    }
    CaseResult {
        name: spec.name.to_string(),
        queue: backend,
        mode,
        runs: reps,
        events,
        wall_s,
        ns_per_event,
        runs_per_sec,
        // `reps.max(1)`: a zero-rep invocation must yield 0.0, not NaN
        // (0.0 / 0.0), which would leak into the JSON as `null`.
        mean_makespan: makespan_sum / reps.max(1) as f64,
    }
}

/// The pinned fast-path cases: every error-free scenario whose scheduler
/// has an exact analytic oracle.
pub fn pinned_fastpath_cases() -> Vec<(String, Scenario, SchedulerKind)> {
    vec![
        (
            "homogeneous/umr".into(),
            Scenario::table1(20, 1.6, 0.3, 0.2, 0.0),
            SchedulerKind::Umr,
        ),
        (
            "homogeneous/one_round".into(),
            Scenario::table1(20, 1.6, 0.3, 0.2, 0.0),
            SchedulerKind::OneRound,
        ),
        (
            "heterogeneous/umr".into(),
            Scenario::heterogeneous_demo(20, 0.0),
            SchedulerKind::HetUmr,
        ),
    ]
}

/// Resolutions per timed rep: one analytic answer is orders of magnitude
/// cheaper than an engine run, so each rep resolves a block of answers to
/// stay above the timer's resolution.
const FASTPATH_ANSWERS_PER_REP: u64 = 64;

fn measure_fastpath(reps: u64) -> Vec<FastPathRow> {
    let mut rows = Vec::new();
    for (name, scenario, kind) in pinned_fastpath_cases() {
        let spec = RunSpec::new(kind);
        let decision = FastPath::resolve(&scenario, &spec)
            .unwrap_or_else(|e| panic!("fastpath case {name} failed to plan: {e}"));
        let answer = decision
            .analytic()
            .unwrap_or_else(|| panic!("fastpath case {name} must resolve analytically"));
        let config = SimConfig {
            trace_mode: TraceMode::Off,
            ..SimConfig::default()
        };
        let mut runner = scenario.runner(config.clone());
        let engine = runner
            .execute_at(&spec, u64::MAX - 1)
            .unwrap_or_else(|e| panic!("fastpath case {name} failed to simulate: {e}"));
        assert!(
            answer.agrees_with(engine.makespan),
            "fastpath case {name}: analytic {} vs engine {} exceeds the oracle tolerance",
            answer.makespan,
            engine.makespan
        );
        let residual = answer.residual(engine.makespan);

        let answers = reps.max(1) * FASTPATH_ANSWERS_PER_REP;
        let start = Instant::now();
        let mut acc = 0.0;
        for _ in 0..answers {
            let d = FastPath::resolve(&scenario, &spec)
                .unwrap_or_else(|e| panic!("fastpath case {name} failed to plan: {e}"));
            acc += d.analytic().map_or(0.0, |a| a.makespan);
        }
        let analytic_wall = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        let ns_per_answer = analytic_wall * 1e9 / answers as f64;

        let engine_runs = reps.max(1);
        let start = Instant::now();
        for seed in 0..engine_runs {
            runner
                .execute_at(&spec, seed)
                .unwrap_or_else(|e| panic!("fastpath case {name} failed to simulate: {e}"));
        }
        let engine_wall = start.elapsed().as_secs_f64();
        let engine_ns_per_run = engine_wall * 1e9 / engine_runs as f64;

        rows.push(FastPathRow {
            name,
            answers,
            ns_per_answer,
            engine_ns_per_run,
            speedup: engine_ns_per_run / ns_per_answer.max(1e-12),
            residual,
        });
    }
    rows
}

fn measure_sweep(reps: u64) -> SweepComparison {
    let competitors = sweep_competitors();
    let time = |mode: TraceMode| {
        let config = snapshot_sweep_config(reps, mode);
        let start = Instant::now();
        let result = run_sweep(&config, &competitors);
        (start.elapsed().as_secs_f64(), result.cells.len() as u64)
    };
    // Warm-up pass (untimed) so neither mode pays first-touch costs, then
    // best-of-3 per mode: the minimum is the least noise-contaminated
    // estimate of the true cost on a shared machine.
    time(TraceMode::Off);
    let mut off_s = f64::INFINITY;
    let mut full_s = f64::INFINITY;
    let mut cells = 0;
    for _ in 0..3 {
        let (t, c) = time(TraceMode::Off);
        off_s = off_s.min(t);
        cells = c;
        let (t, _) = time(TraceMode::Full);
        full_s = full_s.min(t);
    }
    SweepComparison {
        cells,
        reps,
        off_s,
        full_s,
        speedup: full_s / off_s.max(1e-12),
    }
}

/// Run the full pinned suite and assemble a [`Snapshot`]. Cases are
/// measured once per selected backend and repetition mode, grouped
/// backend-major then mode-major (all 16 pinned cases sequential, then
/// all 16 batched, per backend; 64 rows with the default
/// [`QueueSelection::Both`]).
pub fn run_snapshot(config: SnapshotConfig) -> Snapshot {
    let specs = pinned_cases();
    let mut cases = Vec::new();
    for &backend in config.queues.backends() {
        for mode in [CaseMode::Sequential, CaseMode::Batched] {
            for spec in &specs {
                cases.push(measure_case(spec, config.case_reps, backend, mode));
            }
        }
    }
    let fastpath = measure_fastpath(config.case_reps);
    let speed_robust = measure_speed_robust(config.sweep_reps);
    let sweep = measure_sweep(config.sweep_reps);
    Snapshot {
        schema_version: SCHEMA_VERSION,
        created_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        host: hostname(),
        cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0),
        sweep_threads: snapshot_sweep_config(config.sweep_reps, TraceMode::Off).threads as u64,
        commit: git_commit(),
        peak_rss_bytes: peak_rss_bytes(),
        cases,
        fastpath,
        speed_robust,
        sweep,
    }
}

fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".into())
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`), or
/// 0 where unavailable.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

impl Snapshot {
    /// Serialize to the `BENCH_sim.json` document (pretty-printed, stable
    /// key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema_version\": {},\n  \"created_unix\": {},\n",
            self.schema_version, self.created_unix
        ));
        s.push_str(&format!(
            "  \"machine\": {{\"host\": \"{}\", \"cpus\": {}, \"sweep_threads\": {}}},\n",
            json_escape(&self.host),
            self.cpus,
            self.sweep_threads
        ));
        s.push_str(&format!(
            "  \"commit\": \"{}\",\n  \"peak_rss_bytes\": {},\n",
            json_escape(&self.commit),
            self.peak_rss_bytes
        ));
        s.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"queue\": \"{}\", \"mode\": \"{}\", \"runs\": {}, \
                 \"events\": {}, \"wall_s\": {}, \"ns_per_event\": {}, \"runs_per_sec\": {}, \
                 \"mean_makespan\": {}}}{}\n",
                json_escape(&c.name),
                c.queue.name(),
                c.mode.name(),
                c.runs,
                c.events,
                json_num(c.wall_s),
                json_num(c.ns_per_event),
                json_num(c.runs_per_sec),
                json_num(c.mean_makespan),
                if i + 1 < self.cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"fastpath\": [\n");
        for (i, r) in self.fastpath.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"answers\": {}, \"ns_per_answer\": {}, \
                 \"engine_ns_per_run\": {}, \"speedup\": {}, \"residual\": {}}}{}\n",
                json_escape(&r.name),
                r.answers,
                json_num(r.ns_per_answer),
                json_num(r.engine_ns_per_run),
                json_num(r.speedup),
                json_num(r.residual),
                if i + 1 < self.fastpath.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"speed_robust\": [\n");
        for (i, r) in self.speed_robust.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"profile\": \"{}\", \"scheduler\": \"{}\", \"mean_ratio\": {}, \
                 \"mean_makespan\": {}}}{}\n",
                json_escape(&r.profile),
                json_escape(&r.scheduler),
                json_num(r.mean_ratio),
                json_num(r.mean_makespan),
                if i + 1 < self.speed_robust.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"sweep\": {{\"cells\": {}, \"reps\": {}, \"off_s\": {}, \"full_s\": {}, \
             \"speedup\": {}}}\n",
            self.sweep.cells,
            self.sweep.reps,
            json_num(self.sweep.off_s),
            json_num(self.sweep.full_s),
            json_num(self.sweep.speedup)
        ));
        s.push_str("}\n");
        s
    }
}

// ---------------------------------------------------------------------------
// JSON parsing + schema validation
// ---------------------------------------------------------------------------

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let x = obj
        .get(key)
        .and_then(Json::num)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric field '{key}'"))?;
    // Every number in the schema is a count, a timing or a makespan; none
    // may be NaN or infinite (the emitter writes those as `null`, and a
    // hand-edited `1e999` parses to f64 infinity).
    if !x.is_finite() {
        return Err(format!("{ctx}: field '{key}' is not finite"));
    }
    Ok(x)
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::str)
        .ok_or_else(|| format!("{ctx}: missing or non-string field '{key}'"))
}

/// Validate a `BENCH_sim.json` document against the snapshot schema.
/// Checks structure and value sanity (positive timings, non-empty case
/// list), not timing thresholds.
///
/// Accepts the current version-4 schema and the legacy versions 1
/// (pre-`queue`/`sweep_threads`), 2 (pre-`speed_robust`) and 3
/// (pre-`mode`/`fastpath`), so tooling can still check committed
/// historical snapshots.
pub fn validate_snapshot_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let version = require_num(&doc, "schema_version", "root")?;
    if version != 1.0 && version != 2.0 && version != 3.0 && version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported schema_version {version} (expected 1, 2, 3 or {SCHEMA_VERSION})"
        ));
    }
    let v2 = version >= 2.0;
    let v3 = version >= 3.0;
    let v4 = version >= 4.0;
    require_num(&doc, "created_unix", "root")?;
    require_num(&doc, "peak_rss_bytes", "root")?;
    require_str(&doc, "commit", "root")?;
    let machine = doc
        .get("machine")
        .ok_or_else(|| "root: missing 'machine'".to_string())?;
    require_str(machine, "host", "machine")?;
    let cpus = require_num(machine, "cpus", "machine")?;
    if v2 {
        // v2: 0 is the explicit "unknown" sentinel; v1 fabricated 1.
        if cpus < 0.0 {
            return Err("machine: cpus must be >= 0".into());
        }
        if require_num(machine, "sweep_threads", "machine")? < 1.0 {
            return Err("machine: sweep_threads must be >= 1".into());
        }
    } else if cpus < 1.0 {
        return Err("machine: cpus must be >= 1".into());
    }

    let cases = match doc.get("cases") {
        Some(Json::Arr(cases)) => cases,
        _ => return Err("root: missing or non-array 'cases'".into()),
    };
    if cases.is_empty() {
        return Err("cases: must not be empty".into());
    }
    for (i, case) in cases.iter().enumerate() {
        let ctx = format!("cases[{i}]");
        let name = require_str(case, "name", &ctx)?;
        if name.split('/').count() != 3 {
            return Err(format!("{ctx}: name '{name}' is not platform/sched/faults"));
        }
        if v2 {
            let queue = require_str(case, "queue", &ctx)?;
            if QueueBackend::parse(queue).is_none() {
                return Err(format!("{ctx}: unknown queue backend '{queue}'"));
            }
        }
        if v4 {
            let mode = require_str(case, "mode", &ctx)?;
            if CaseMode::parse(mode).is_none() {
                return Err(format!("{ctx}: unknown case mode '{mode}'"));
            }
        }
        for key in ["runs", "events", "wall_s", "ns_per_event", "runs_per_sec"] {
            if require_num(case, key, &ctx)? <= 0.0 {
                return Err(format!("{ctx}: field '{key}' must be positive"));
            }
        }
        require_num(case, "mean_makespan", &ctx)?;
    }

    if v4 {
        let rows = match doc.get("fastpath") {
            Some(Json::Arr(rows)) => rows,
            _ => return Err("root: missing or non-array 'fastpath'".into()),
        };
        if rows.is_empty() {
            return Err("fastpath: must not be empty".into());
        }
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("fastpath[{i}]");
            let name = require_str(row, "name", &ctx)?;
            if name.split('/').count() != 2 {
                return Err(format!("{ctx}: name '{name}' is not platform/sched"));
            }
            for key in ["answers", "ns_per_answer", "engine_ns_per_run", "speedup"] {
                if require_num(row, key, &ctx)? <= 0.0 {
                    return Err(format!("{ctx}: field '{key}' must be positive"));
                }
            }
            let residual = require_num(row, "residual", &ctx)?;
            // The section only exists for cases with an exact oracle; a
            // residual past a loose sanity bound means the fast path and
            // the engine have drifted apart.
            if !(0.0..=1e-3).contains(&residual) {
                return Err(format!("{ctx}: residual {residual} out of range"));
            }
        }
    }

    if v3 {
        let rows = match doc.get("speed_robust") {
            Some(Json::Arr(rows)) => rows,
            _ => return Err("root: missing or non-array 'speed_robust'".into()),
        };
        if rows.is_empty() {
            return Err("speed_robust: must not be empty".into());
        }
        for (i, row) in rows.iter().enumerate() {
            let ctx = format!("speed_robust[{i}]");
            require_str(row, "profile", &ctx)?;
            require_str(row, "scheduler", &ctx)?;
            let ratio = require_num(row, "mean_ratio", &ctx)?;
            // The clairvoyant reference can never lose to the blind run
            // it references; a ratio below 1 means the metric is broken.
            if ratio < 1.0 - 1e-6 {
                return Err(format!("{ctx}: mean_ratio {ratio} is below 1"));
            }
            if require_num(row, "mean_makespan", &ctx)? <= 0.0 {
                return Err(format!("{ctx}: mean_makespan must be positive"));
            }
        }
    }

    let sweep = doc
        .get("sweep")
        .ok_or_else(|| "root: missing 'sweep'".to_string())?;
    for key in ["cells", "reps", "off_s", "full_s", "speedup"] {
        if require_num(sweep, key, "sweep")? <= 0.0 {
            return Err(format!("sweep: field '{key}' must be positive"));
        }
    }
    Ok(())
}

/// Aggregate batched-over-sequential throughput factor of a snapshot
/// document: Σ wall_s over the sequential case rows divided by Σ wall_s
/// over the batched ones. The two modes run identical work (same cases,
/// same seeds, same event counts — enforced by the snapshot tests), so
/// the wall-time ratio *is* the throughput ratio. Errors when the
/// document has no rows of either mode (pre-v4 snapshots).
pub fn batched_speedup_from_json(text: &str) -> Result<f64, String> {
    let doc = parse_json(text)?;
    let cases = match doc.get("cases") {
        Some(Json::Arr(cases)) => cases,
        _ => return Err("root: missing or non-array 'cases'".into()),
    };
    let mut sequential = 0.0;
    let mut batched = 0.0;
    for (i, case) in cases.iter().enumerate() {
        let ctx = format!("cases[{i}]");
        let mode = require_str(case, "mode", &ctx)?;
        let wall = require_num(case, "wall_s", &ctx)?;
        match CaseMode::parse(mode) {
            Some(CaseMode::Sequential) => sequential += wall,
            Some(CaseMode::Batched) => batched += wall,
            None => return Err(format!("{ctx}: unknown case mode '{mode}'")),
        }
    }
    if sequential <= 0.0 || batched <= 0.0 {
        return Err("document has no timed sequential/batched row pair".into());
    }
    Ok(sequential / batched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_snapshot() -> Snapshot {
        Snapshot {
            schema_version: SCHEMA_VERSION,
            created_unix: 1_700_000_000,
            host: "test\"host".into(),
            cpus: 8,
            sweep_threads: 1,
            commit: "deadbeef".into(),
            peak_rss_bytes: 1024,
            cases: vec![CaseResult {
                name: "homogeneous/umr/fault-free".into(),
                queue: QueueBackend::Calendar,
                mode: CaseMode::Sequential,
                runs: 3,
                events: 900,
                wall_s: 0.001,
                ns_per_event: 1111.1,
                runs_per_sec: 3000.0,
                mean_makespan: 63.5,
            }],
            fastpath: vec![FastPathRow {
                name: "homogeneous/umr".into(),
                answers: 640,
                ns_per_answer: 2500.0,
                engine_ns_per_run: 250_000.0,
                speedup: 100.0,
                residual: 1e-9,
            }],
            speed_robust: vec![SpeedRobustRow {
                profile: "adversarial(fraction=0.25,slowdown=2)".into(),
                scheduler: "RUMR".into(),
                mean_ratio: 1.18,
                mean_makespan: 71.0,
            }],
            sweep: SweepComparison {
                cells: 12,
                reps: 2,
                off_s: 0.1,
                full_s: 0.25,
                speedup: 2.5,
            },
        }
    }

    #[test]
    fn emitted_json_round_trips_validation() {
        let json = dummy_snapshot().to_json();
        validate_snapshot_json(&json).expect("emitted snapshot must validate");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_snapshot_json("not json").is_err());
        assert!(validate_snapshot_json("{}").is_err());
        // Wrong schema version.
        let mut snap = dummy_snapshot();
        snap.schema_version = 99;
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
        // Empty case list.
        let mut snap = dummy_snapshot();
        snap.cases.clear();
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
        // Non-positive timing.
        let mut snap = dummy_snapshot();
        snap.cases[0].wall_s = 0.0;
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
        // Malformed case name.
        let mut snap = dummy_snapshot();
        snap.cases[0].name = "plain".into();
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
        // v3: a robustness ratio below 1 is a broken metric.
        let mut snap = dummy_snapshot();
        snap.speed_robust[0].mean_ratio = 0.93;
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
        // v3: the speed_robust section is mandatory and non-empty.
        let mut snap = dummy_snapshot();
        snap.speed_robust.clear();
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
        // v4: case rows must carry a known repetition mode.
        let snap = dummy_snapshot();
        let missing_mode = snap.to_json().replace("\"mode\": \"sequential\", ", "");
        assert!(validate_snapshot_json(&missing_mode).is_err());
        let bad_mode = snap.to_json().replace("\"sequential\"", "\"vectorized\"");
        assert!(validate_snapshot_json(&bad_mode).is_err());
        // v4: the fastpath section is mandatory and non-empty.
        let mut snap = dummy_snapshot();
        snap.fastpath.clear();
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
        // v4: an analytic answer that drifted from the engine is rejected.
        let mut snap = dummy_snapshot();
        snap.fastpath[0].residual = 0.02;
        assert!(validate_snapshot_json(&snap.to_json()).is_err());
    }

    #[test]
    fn validator_rejects_non_finite_numbers() {
        // Regression: a NaN mean_makespan used to serialize as the finite
        // sentinel -1 and sail through validation. It now serializes as
        // `null`, and the validator requires every schema number to be
        // finite.
        let mut snap = dummy_snapshot();
        snap.cases[0].mean_makespan = f64::NAN;
        let json = snap.to_json();
        assert!(json.contains("\"mean_makespan\": null"));
        assert!(validate_snapshot_json(&json).is_err());
        // Numbers whose text parses to f64 infinity are rejected too.
        let huge = dummy_snapshot().to_json().replace("63.5", "1e999");
        assert!(validate_snapshot_json(&huge).is_err());
    }

    #[test]
    fn validator_accepts_legacy_v1_documents() {
        // A pre-queue-backend snapshot: no per-case 'queue', no machine
        // 'sweep_threads', cpus >= 1 required.
        let v1 = r#"{
          "schema_version": 1,
          "created_unix": 1700000000,
          "machine": {"host": "old", "cpus": 4},
          "commit": "abc",
          "peak_rss_bytes": 0,
          "cases": [
            {"name": "homogeneous/umr/fault-free", "runs": 2, "events": 100,
             "wall_s": 0.01, "ns_per_event": 100.0, "runs_per_sec": 200.0,
             "mean_makespan": 63.5}
          ],
          "sweep": {"cells": 12, "reps": 2, "off_s": 0.1, "full_s": 0.2, "speedup": 2.0}
        }"#;
        validate_snapshot_json(v1).expect("v1 must stay parseable");
        // A v2 document: queue fields required, speed_robust not yet.
        let mut snap = dummy_snapshot();
        snap.schema_version = 2;
        snap.speed_robust.clear();
        validate_snapshot_json(&snap.to_json()).expect("v2 must stay parseable");
        // A v3 document: speed_robust required, mode/fastpath not yet
        // (both are present in the emitted text and ignored as extras).
        let mut snap = dummy_snapshot();
        snap.schema_version = 3;
        validate_snapshot_json(&snap.to_json()).expect("v3 must stay parseable");
        // But v1 rules still apply to v1 documents.
        assert!(validate_snapshot_json(&v1.replace("\"cpus\": 4", "\"cpus\": 0")).is_err());
        // And v2 requires the queue field.
        let snap = dummy_snapshot();
        let missing_queue = snap.to_json().replace("\"queue\": \"calendar\", ", "");
        assert!(validate_snapshot_json(&missing_queue).is_err());
        let bad_queue = snap.to_json().replace("\"calendar\"", "\"ladder\"");
        assert!(validate_snapshot_json(&bad_queue).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5e1, "x\ny\"z"], "b": {"c": null}}"#).unwrap();
        let a = v.get("a").unwrap();
        match a {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1], Json::Num(-25.0));
                assert_eq!(items[2], Json::Str("x\ny\"z".into()));
            }
            _ => panic!("a must be an array"),
        }
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn quick_snapshot_runs_and_validates() {
        let snap = run_snapshot(SnapshotConfig {
            case_reps: 2,
            sweep_reps: 1,
            queues: QueueSelection::Both,
        });
        assert_eq!(
            snap.cases.len(),
            64,
            "16 pinned cases x 2 backends x 2 modes"
        );
        for case in &snap.cases {
            assert!(case.events > 0, "{}: no events recorded", case.name);
            assert!(case.mean_makespan > 0.0);
        }
        assert_eq!(snap.sweep_threads, 1, "pinned sweep is single-threaded");
        // The two backends must agree bit-for-bit on every pinned
        // (case, mode) row: same event counts, same mean makespans.
        let (heap, cal) = snap.cases.split_at(32);
        for (h, c) in heap.iter().zip(cal) {
            assert_eq!(h.name, c.name);
            assert_eq!(h.mode, c.mode);
            assert_eq!(h.queue, QueueBackend::Heap);
            assert_eq!(c.queue, QueueBackend::Calendar);
            assert_eq!(
                h.events, c.events,
                "{}: backends disagree on events",
                h.name
            );
            assert_eq!(
                h.mean_makespan.to_bits(),
                c.mean_makespan.to_bits(),
                "{}: backends disagree on makespan",
                h.name
            );
        }
        // And within each backend, the batched pass must reproduce the
        // sequential loop bit-for-bit (the engine-path contract of the
        // batched repetition API).
        for backend_block in snap.cases.chunks(32) {
            let (seq, bat) = backend_block.split_at(16);
            for (s, b) in seq.iter().zip(bat) {
                assert_eq!(s.name, b.name);
                assert_eq!(s.mode, CaseMode::Sequential);
                assert_eq!(b.mode, CaseMode::Batched);
                assert_eq!(s.events, b.events, "{}: modes disagree on events", s.name);
                assert_eq!(
                    s.mean_makespan.to_bits(),
                    b.mean_makespan.to_bits(),
                    "{}: modes disagree on makespan",
                    s.name
                );
            }
        }
        assert_eq!(snap.fastpath.len(), 3, "3 pinned fast-path cases");
        for row in &snap.fastpath {
            assert!(row.ns_per_answer > 0.0 && row.engine_ns_per_run > 0.0);
            assert!(
                row.residual >= 0.0 && row.residual <= 1e-6,
                "{}: fast path drifted from the engine (residual {})",
                row.name,
                row.residual
            );
        }
        assert!(snap.sweep.cells == 12);
        assert_eq!(
            snap.speed_robust.len(),
            12,
            "3 pinned profiles x 4 competitors"
        );
        for row in &snap.speed_robust {
            assert!(
                row.mean_ratio >= 1.0 - 1e-9 && row.mean_ratio.is_finite(),
                "{}/{}: bad ratio {}",
                row.profile,
                row.scheduler,
                row.mean_ratio
            );
        }
        validate_snapshot_json(&snap.to_json()).expect("real snapshot must validate");
    }

    #[test]
    fn batched_speedup_aggregates_wall_time_by_mode() {
        let mut snap = dummy_snapshot();
        let mut batched = snap.cases[0].clone();
        batched.mode = CaseMode::Batched;
        batched.wall_s = 0.0005;
        snap.cases.push(batched);
        let speedup = batched_speedup_from_json(&snap.to_json()).unwrap();
        assert!((speedup - 2.0).abs() < 1e-9, "got {speedup}");
        // A document with only sequential rows has nothing to compare.
        assert!(batched_speedup_from_json(&dummy_snapshot().to_json()).is_err());
    }

    #[test]
    fn queue_selection_parse_and_backends() {
        assert_eq!(QueueSelection::parse("heap"), Some(QueueSelection::Heap));
        assert_eq!(
            QueueSelection::parse("calendar"),
            Some(QueueSelection::Calendar)
        );
        assert_eq!(QueueSelection::parse("both"), Some(QueueSelection::Both));
        assert_eq!(QueueSelection::parse("ladder"), None);
        assert_eq!(QueueSelection::Heap.backends(), &[QueueBackend::Heap]);
        assert_eq!(
            QueueSelection::Both.backends(),
            &[QueueBackend::Heap, QueueBackend::Calendar]
        );
    }
}
