//! Concurrent-transfer study: the paper's §3.1 future work.
//!
//! "Although this is a common assumption in most previous work, it could be
//! beneficial to allow for simultaneous transfers for better throughput in
//! some cases (e.g. WANs)." This experiment quantifies that: the master may
//! keep up to `k` transfers in flight, their `nLat` setups overlapping and
//! their data phases sharing the master's uplink (capacity fixed at the
//! per-link rate `B`, i.e. total throughput never exceeds the serial
//! model's — any gain comes purely from latency hiding).
//!
//! Expected shape: at low `nLat`, concurrency buys little (the serial link
//! was already busy with data); at WAN-like `nLat`, pull-based schedulers
//! (Factoring) gain enormously since their per-chunk setup cost was the
//! serialized bottleneck, and RUMR's phase 2 stops being a liability in
//! high-latency regimes.
//!
//! Flags: `--reps N`, `--seed N`.

use rumr::{RunSpec, Scenario, SchedulerKind};

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let reps = opts.reps_or(10);
    let error = 0.3;
    let n = 20;
    let ratio = 1.6;

    println!(
        "Concurrent master transfers, shared uplink capacity = B = {:.0} units/s",
        ratio * n as f64
    );
    println!("(N = {n}, error = {error}, {reps} reps; makespans in seconds)\n");

    for &nlat in &[0.1, 0.5, 1.0] {
        println!("--- nLat = {nlat}, cLat = 0.2 ---");
        print!("{:<10}", "k");
        let kinds = [
            SchedulerKind::rumr_known_error(error),
            SchedulerKind::Umr,
            SchedulerKind::Factoring,
        ];
        for kind in &kinds {
            print!("{:>12}", kind.label());
        }
        println!();
        let scenario = Scenario::table1(n, ratio, 0.2, nlat, error);
        let capacity = Some(ratio * n as f64);
        for &k in &[1usize, 2, 4, 20] {
            print!("{k:<10}");
            for kind in &kinds {
                let mut spec = RunSpec::new(*kind).reps(10);
                opts.apply_to(&mut spec);
                spec.config.max_concurrent_sends = k;
                spec.config.uplink_capacity = capacity;
                let mean = scenario.execute_mean(&spec).expect("simulation succeeds");
                print!("{mean:>12.2}");
            }
            println!();
        }
        println!();
    }

    println!("k = 1 is the paper's serial model; gains at larger k come purely");
    println!("from overlapping nLat setups (the uplink never exceeds B).");
}
