//! Heterogeneity extension experiment (beyond the paper's homogeneous
//! evaluation): random star platforms with increasing worker heterogeneity,
//! comparing the heterogeneous UMR planner against the reactive and static
//! baselines.
//!
//! Worker speeds and bandwidths are drawn log-normally with a controlled
//! coefficient of variation; per-platform makespans are normalized to
//! heterogeneous UMR.
//!
//! Flags: `--reps N` (platforms per heterogeneity level), `--seed N`.

use dls_numerics::dist::Normal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rumr::{ErrorModel, Platform, RunSpec, Scenario, SchedulerKind, WorkerSpec};

fn random_platform(n: usize, spread: f64, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lognormal = Normal::new(0.0, spread);
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|_| {
            let speed = lognormal.sample(&mut rng).exp();
            let bandwidth = 3.0 * n as f64 * lognormal.sample(&mut rng).exp();
            WorkerSpec {
                speed,
                bandwidth,
                comp_latency: 0.2,
                net_latency: 0.1,
                transfer_latency: 0.0,
            }
        })
        .collect();
    Platform::new(workers).expect("valid platform")
}

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let platforms_per_level = opts.reps_or(5);
    let root = opts.sweep.root_seed;
    let error = 0.2;

    let competitors = [
        SchedulerKind::HetRumr(rumr::RumrConfig::with_known_error(error)),
        SchedulerKind::Factoring,
        SchedulerKind::SelfScheduling { unit: 10.0 },
        SchedulerKind::EqualStatic,
    ];

    println!("Heterogeneous platforms (N = 12, error = {error}), makespans normalized to UMR-het");
    println!("({platforms_per_level} random platforms per heterogeneity level)\n");
    print!("{:<14}", "speed spread");
    for kind in &competitors {
        print!("{:>12}", kind.label());
    }
    println!();

    for &spread in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut sums = vec![0.0; competitors.len()];
        let mut het_sum = 0.0;
        for p in 0..platforms_per_level {
            let platform = random_platform(12, spread, root + 31 * p + (spread * 1000.0) as u64);
            let scenario = Scenario {
                platform,
                w_total: 1000.0,
                error_model: ErrorModel::TruncatedNormal { error },
                cost_profile: None,
                temporal_noise: None,
            };
            let het = scenario
                .execute_mean(&RunSpec::new(SchedulerKind::HetUmr).seed(p).reps(5))
                .expect("simulation succeeds");
            het_sum += het;
            for (i, kind) in competitors.iter().enumerate() {
                sums[i] += scenario
                    .execute_mean(&RunSpec::new(*kind).seed(p + 500).reps(5))
                    .expect("simulation succeeds");
            }
        }
        print!("{spread:<14.2}");
        for s in &sums {
            print!("{:>12.3}", s / het_sum);
        }
        println!();
    }

    println!("\nvalues > 1: the heterogeneous UMR planner (with resource selection)");
    println!("beats the baseline; the gap should widen as heterogeneity grows.");
}
