//! Trace-driven validation of the paper's error abstraction.
//!
//! The paper models data-dependent execution times as a ratio distribution
//! `N(1, error)` and defers "traces from real applications" to future work
//! (§6). This experiment runs both on the same synthetic applications:
//!
//! * **trace-driven**: each chunk's computation time follows the actual
//!   per-unit costs of the range it covers (plus mild platform noise);
//! * **model**: the distribution abstraction with `error` set to the
//!   workload's measured coefficient of variation.
//!
//! If the abstraction is sound, algorithm rankings — and roughly the
//! makespans — should agree. Note the structural difference the comparison
//! exposes: trace costs are *spatially correlated* (a hot image region
//! spans consecutive chunks) while the model draws independently per chunk.
//!
//! Flags: `--reps N`, `--seed N` (grid/model flags are ignored).

use dls_experiments::CliOptions;
use dls_workloads::{DivisibleApp, ImageFeatureExtraction, RayTracing, SequenceMatching};
use rumr::{HomogeneousParams, RunSpec, Scenario, SchedulerKind};

/// Residual platform noise applied on top of the trace costs.
const PLATFORM_NOISE: f64 = 0.05;

fn mean(scenario: &Scenario, opts: &CliOptions, kind: SchedulerKind, seed_offset: u64) -> f64 {
    let mut spec = RunSpec::new(kind).reps(5);
    opts.apply_to(&mut spec);
    spec.seed += seed_offset;
    scenario.execute_mean(&spec).expect("simulation succeeds")
}

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let reps = opts.reps_or(5);

    let apps: Vec<Box<dyn DivisibleApp>> = vec![
        Box::new(ImageFeatureExtraction::generate(40, 25, 8, 4.0, 7)),
        Box::new(SequenceMatching::generate(1000, 350.0, 0.35, 11)),
        Box::new(RayTracing::generate(40, 25, 12, 5, 99)),
    ];

    println!("Trace-driven vs distribution-model makespans ({reps} reps each)\n");
    println!(
        "{:<28} {:>6} {:<12} {:>12} {:>12} {:>8}",
        "application", "cv", "algorithm", "trace (s)", "model (s)", "ratio"
    );

    for app in &apps {
        let cv = app.cost_variability();
        let platform = HomogeneousParams::table1(16, 1.5, 0.2, 0.1)
            .build()
            .expect("valid platform");
        let trace_scenario = app.scenario_trace_driven(platform.clone(), PLATFORM_NOISE);
        let model_scenario = app.scenario(platform);

        let kinds = [
            SchedulerKind::rumr_known_error(cv.min(1.0)),
            SchedulerKind::Umr,
            SchedulerKind::Factoring,
        ];
        for kind in &kinds {
            let t = mean(&trace_scenario, &opts, *kind, 0);
            let m = mean(&model_scenario, &opts, *kind, 1000);
            println!(
                "{:<28} {:>6.3} {:<12} {:>12.2} {:>12.2} {:>8.3}",
                app.name(),
                cv,
                kind.label(),
                t,
                m,
                t / m
            );
        }
        println!();
    }

    println!("ratio ≈ 1 ⇒ the paper's N(1, error) abstraction captures the");
    println!("data-dependence; deviations stem from spatial cost correlation.");
}
