//! Benchmark snapshot harness: runs the pinned engine/sweep suite and
//! persists `BENCH_sim.json` (see `docs/BENCHMARKS.md`).
//!
//! ```text
//! cargo run --release -p dls-experiments --bin bench_snapshot
//! ```
//!
//! Options:
//!
//! * `--out PATH`   output path (default `BENCH_sim.json`)
//! * `--reps N`     timed repetitions per engine case (default 200)
//! * `--quick`      reduced CI budget (10 case reps, 2 sweep reps)
//! * `--queue Q`    heap | calendar | both — event-queue backends to
//!   measure (default both; each selected backend gets its own case rows)
//! * `--check PATH` validate an existing snapshot file and exit
//! * `--min-speedup X`  exit non-zero unless the Off-vs-Full sweep
//!   speedup is at least `X` (timing gate, off by default)
//! * `--assert-batched-speedup X`  exit non-zero unless the aggregate
//!   batched-vs-sequential wall-time factor of the snapshot (freshly
//!   measured, or the `--check` file) is at least `X`

use std::path::PathBuf;
use std::process::exit;

use dls_experiments::{
    batched_speedup_from_json, run_snapshot, validate_snapshot_json, QueueSelection, SnapshotConfig,
};

const USAGE: &str = "usage: bench_snapshot [--out PATH] [--reps N] [--quick] \
                     [--queue heap|calendar|both] [--min-speedup X] \
                     [--assert-batched-speedup X] [--check PATH]";

struct Options {
    out: PathBuf,
    config: SnapshotConfig,
    check: Option<PathBuf>,
    min_speedup: Option<f64>,
    min_batched_speedup: Option<f64>,
}

fn parse_options(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        out: PathBuf::from("BENCH_sim.json"),
        config: SnapshotConfig::standard(),
        check: None,
        min_speedup: None,
        min_batched_speedup: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--reps" => {
                opts.config.case_reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if opts.config.case_reps == 0 {
                    return Err("--reps must be positive".into());
                }
            }
            "--quick" => {
                let queues = opts.config.queues;
                opts.config = SnapshotConfig::quick();
                opts.config.queues = queues;
            }
            "--queue" => {
                let v = value("--queue")?;
                opts.config.queues = QueueSelection::parse(&v)
                    .ok_or_else(|| format!("unknown queue selection '{v}'\n{USAGE}"))?;
            }
            "--check" => opts.check = Some(PathBuf::from(value("--check")?)),
            "--min-speedup" => {
                opts.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                )
            }
            "--assert-batched-speedup" => {
                opts.min_batched_speedup = Some(
                    value("--assert-batched-speedup")?
                        .parse()
                        .map_err(|e| format!("--assert-batched-speedup: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_options(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    };

    if let Some(path) = &opts.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(1);
            }
        };
        match validate_snapshot_json(&text) {
            Ok(()) => println!("{}: valid snapshot", path.display()),
            Err(e) => {
                eprintln!("{}: INVALID snapshot: {e}", path.display());
                exit(1);
            }
        }
        if !gate_batched(&text, opts.min_batched_speedup) {
            exit(1);
        }
        return;
    }

    let snapshot = run_snapshot(opts.config);
    let json = snapshot.to_json();
    validate_snapshot_json(&json).expect("snapshot must validate against its own schema");
    std::fs::write(&opts.out, &json).expect("write snapshot");

    eprintln!(
        "wrote {} ({} cases, commit {})",
        opts.out.display(),
        snapshot.cases.len(),
        snapshot.commit
    );
    let mut fastest = (f64::INFINITY, String::new());
    let mut slowest = (0.0f64, String::new());
    for case in &snapshot.cases {
        let label = format!("{} [{}]", case.name, case.queue.name());
        if case.ns_per_event < fastest.0 {
            fastest = (case.ns_per_event, label.clone());
        }
        if case.ns_per_event > slowest.0 {
            slowest = (case.ns_per_event, label);
        }
    }
    eprintln!(
        "engine: {:.0}–{:.0} ns/event ({} … {})",
        fastest.0, slowest.0, fastest.1, slowest.1
    );
    eprintln!(
        "sweep ({} cells × {} reps): Off {:.3} s, Full {:.3} s — {:.2}x speedup",
        snapshot.sweep.cells,
        snapshot.sweep.reps,
        snapshot.sweep.off_s,
        snapshot.sweep.full_s,
        snapshot.sweep.speedup
    );
    if let Some(min) = opts.min_speedup {
        if snapshot.sweep.speedup < min {
            eprintln!(
                "FAIL: speedup {:.2}x below required {min:.2}x",
                snapshot.sweep.speedup
            );
            exit(1);
        }
    }
    if !gate_batched(&json, opts.min_batched_speedup) {
        exit(1);
    }
}

/// Report the aggregate batched-vs-sequential factor of a snapshot
/// document and apply the optional `--assert-batched-speedup` gate.
/// A document without comparable rows (pre-v4) only fails when the gate
/// is armed.
fn gate_batched(json: &str, min: Option<f64>) -> bool {
    match batched_speedup_from_json(json) {
        Ok(speedup) => {
            eprintln!("batched repetition: {speedup:.2}x the sequential loop's wall time");
            match min {
                Some(min) if speedup < min => {
                    eprintln!("FAIL: batched speedup {speedup:.2}x below required {min:.2}x");
                    false
                }
                _ => true,
            }
        }
        Err(e) => {
            if min.is_some() {
                eprintln!("FAIL: cannot compute batched speedup: {e}");
                return false;
            }
            true
        }
    }
}
