//! Conformance audit harness: runs the pinned suite through the
//! differential × invariant × analytic-oracle checks (see `docs/AUDIT.md`)
//! and exits non-zero on any finding.
//!
//! ```text
//! cargo run --release -p dls-experiments --bin audit
//! ```
//!
//! Options:
//!
//! * `--reps N`     seeds per (case, configuration) pair (default 5)
//! * `--quick`      CI smoke budget (2 seeds per pair)
//! * `--queue Q`    heap | calendar | both — event-queue backends to
//!   cross-check against the heap/Off/fresh reference (default both)
//! * `--out PATH`   also write the JSON report to PATH

use std::path::PathBuf;
use std::process::exit;

use dls_experiments::{run_audit, AuditOptions, QueueSelection};

const USAGE: &str = "usage: audit [--reps N] [--quick] [--queue heap|calendar|both] [--out PATH]";

struct Options {
    audit: AuditOptions,
    out: Option<PathBuf>,
}

fn parse_options(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        audit: AuditOptions::default(),
        out: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--reps" => {
                opts.audit.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if opts.audit.reps == 0 {
                    return Err("--reps must be positive".into());
                }
            }
            "--quick" => {
                let queue = opts.audit.queue;
                opts.audit = AuditOptions::quick();
                opts.audit.queue = queue;
            }
            "--queue" => {
                let v = value("--queue")?;
                opts.audit.queue = QueueSelection::parse(&v)
                    .ok_or_else(|| format!("unknown queue selection '{v}'\n{USAGE}"))?;
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_options(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    };

    let report = run_audit(&opts.audit);
    if let Some(path) = &opts.out {
        std::fs::write(path, report.to_json()).expect("write audit report");
        eprintln!("wrote {}", path.display());
    }
    eprintln!(
        "audited {} cases × {} configurations × {} seeds ({} runs)",
        report.cases, report.configs_per_case, report.reps, report.runs
    );
    if report.is_clean() {
        eprintln!("conforming: no findings");
    } else {
        eprintln!("{} finding(s):", report.findings.len());
        for f in &report.findings {
            eprintln!("  {f}");
        }
        exit(1);
    }
}
