//! Speed-robust stress sweep: RUMR / UMR / Factoring / OneRound under
//! declared-vs-realized speed revelation.
//!
//! For each speed profile (identity, stochastic noise, sandbagging subset,
//! worst-case-within-budget adversary) the bin sweeps a compact platform
//! grid, executing every run at the *realized* rates while the planners
//! see only the *declared* platform, and reports the mean robustness
//! ratio — realized makespan over the clairvoyant reference replanned on
//! the realized rates. The engine's streaming invariant audit is on for
//! every run.
//!
//! ```text
//! cargo run --release -p dls-experiments --bin speed_robust -- --quick
//! ```
//!
//! Exits non-zero when any audited run produces an invariant finding or
//! any robustness ratio dips below 1 (both would mean the revelation
//! machinery, not the schedulers, is broken). Standard harness flags
//! apply; `--speeds SPEC` restricts the run to one revelation profile and
//! `--csv PATH` dumps every (profile, cell, competitor) row.

use std::fmt::Write as _;
use std::process::exit;

use dls_experiments::{run_sweep, write_file, Competitor, Table1Grid};
use rumr::SpeedModel;

/// Tolerance on the ratio ≥ 1 invariant (float noise only).
const RATIO_EPS: f64 = 1e-9;

fn competitors() -> Vec<Competitor> {
    vec![
        Competitor::RumrKnown,
        Competitor::Umr,
        Competitor::Factoring,
        Competitor::OneRound,
    ]
}

/// The default profile ladder: trusting regime first (bit-identity
/// anchor), then increasingly structured revelations.
fn default_profiles(seed: u64) -> Vec<SpeedModel> {
    vec![
        SpeedModel::Declared,
        SpeedModel::Stochastic { spread: 0.25, seed },
        SpeedModel::Sandbagged {
            fraction: 0.25,
            slowdown: 2.0,
            seed,
        },
        SpeedModel::Adversarial {
            fraction: 0.25,
            slowdown: 2.0,
        },
    ]
}

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    };

    // Compact pinned grid unless --full: the clairvoyant twin doubles the
    // simulation count, so the generic 144-point quick grid is too slow
    // for a smoke run.
    let mut sweep_config = opts.sweep.clone();
    if sweep_config.grid.len() > 16 {
        sweep_config.grid = Table1Grid {
            n_values: vec![10, 20],
            ratio_values: vec![1.5],
            clat_values: vec![0.2],
            nlat_values: vec![0.2, 0.6],
        };
        sweep_config.errors = vec![0.04, 0.24, 0.44];
    }
    sweep_config.reps = opts.reps_or(10);
    sweep_config.audit = true;

    // --speeds pins a single revelation profile; otherwise the ladder.
    let profiles = if sweep_config.speeds.is_active() {
        vec![sweep_config.speeds]
    } else {
        default_profiles(sweep_config.root_seed)
    };

    let comps = competitors();
    let mut table = format!("{:<48}", "profile");
    for c in &comps {
        let _ = write!(table, "{:>12}", c.label());
    }
    table.push('\n');

    let mut csv =
        String::from("profile,scheduler,n,ratio,clat,nlat,error,mean_makespan,mean_robustness\n");
    let mut violations = 0usize;

    for profile in &profiles {
        let mut config = sweep_config.clone();
        config.speeds = *profile;
        let result = run_sweep(&config, &comps);

        let mut ratio_sums = vec![0.0; comps.len()];
        for cell in &result.cells {
            if cell.audit_findings > 0 {
                eprintln!(
                    "AUDIT: {} finding(s) under {} at N={} error={}",
                    cell.audit_findings,
                    profile.label(),
                    cell.point.n,
                    cell.error
                );
                violations += cell.audit_findings;
            }
            for (c, comp) in comps.iter().enumerate() {
                let ratio = cell.robustness.as_ref().map(|r| r[c]);
                if let Some(r) = ratio {
                    if !(r.is_finite() && r >= 1.0 - RATIO_EPS) {
                        eprintln!(
                            "RATIO: {} under {} at N={} error={} is {r}",
                            comp.label(),
                            profile.label(),
                            cell.point.n,
                            cell.error
                        );
                        violations += 1;
                    }
                    ratio_sums[c] += r;
                }
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{},{:.6},{}",
                    profile.label(),
                    comp.label(),
                    cell.point.n,
                    cell.point.ratio,
                    cell.point.comp_latency,
                    cell.point.net_latency,
                    cell.error,
                    cell.means[c],
                    ratio.map_or(String::new(), |r| format!("{r:.6}")),
                );
            }
        }

        let _ = write!(table, "{:<48}", profile.label());
        for (c, _) in comps.iter().enumerate() {
            if profile.is_active() {
                let mean = ratio_sums[c] / result.cells.len() as f64;
                let _ = write!(table, "{mean:>12.4}");
            } else {
                let _ = write!(table, "{:>12}", "1 (def)");
            }
        }
        table.push('\n');
    }

    println!("mean robustness ratio (realized / clairvoyant makespan):\n");
    println!("{table}");
    if let Some(path) = &opts.csv {
        write_file(path, &csv).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
    if violations > 0 {
        eprintln!("{violations} violation(s)");
        exit(1);
    }
    eprintln!("clean: every audited run conforming, every ratio >= 1");
}
