//! Reproduces Fig. 4(a): mean makespan of each competitor normalized to
//! RUMR, versus error, over the whole parameter grid.

use dls_experiments::ascii_chart;
use dls_experiments::{
    fig4a, paper_competitors, parse_env, render_series, run_sweep, series_csv, write_file,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let sweep = run_sweep(&opts.sweep, &paper_competitors());
    let series = fig4a(&sweep);
    print!(
        "{}",
        render_series(
            "Fig 4(a): makespan normalized to RUMR vs error (all parameters)",
            &series
        )
    );
    print!(
        "\n{}",
        ascii_chart(
            "(relative makespan vs error; values above the 1.00 line mean RUMR wins)",
            &series,
            70,
            16
        )
    );
    if let Some(path) = opts.csv {
        write_file(&path, &series_csv(&series)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
