//! Non-stationarity study: testing the paper's §4.1 conjecture.
//!
//! The paper assumes prediction errors are stationary and independent per
//! operation, and argues RUMR "should still be effective" when the
//! distribution drifts slowly. This experiment replaces the i.i.d. draws
//! with temporally correlated per-worker load noise (AR(1) log-load of
//! correlation ρ): ρ = 0 is the paper's i.i.d. setting; ρ → 1 gives each
//! worker a *persistent* speed offset — the adversarial case for any
//! precalculated schedule, since a consistently slow worker keeps
//! receiving its planned share.
//!
//! Expected shape: as ρ grows, (a) plain UMR degrades hardest, (b) RUMR's
//! out-of-order dispatch — worth only ~1 % under i.i.d. errors (Fig. 7) —
//! becomes visibly valuable, and (c) fully reactive Factoring catches up.
//!
//! Flags: `--reps N`, `--seed N`.

use rumr::sim::TemporalNoise;
use rumr::{RunSpec, Scenario, SchedulerKind};

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let reps = opts.reps_or(15);
    let sigma = 0.3;

    let kinds = |error: f64| {
        [
            SchedulerKind::rumr_known_error(error),
            SchedulerKind::rumr_plain_phase1(error),
            SchedulerKind::Umr,
            SchedulerKind::Factoring,
        ]
    };

    println!(
        "Per-worker AR(1) load noise, log-std sigma = {sigma}, N = 20, B = 1.6N, cLat = 0.2, nLat = 0.1"
    );
    println!("({reps} reps; makespans in seconds; RUMR uses error = sigma as its estimate)\n");
    print!("{:<8}", "rho");
    for kind in kinds(sigma) {
        print!("{:>13}", kind.label());
    }
    println!();

    for &rho in &[0.0, 0.5, 0.9, 0.99] {
        let mut scenario = Scenario::table1(20, 1.6, 0.2, 0.1, 0.0);
        scenario.temporal_noise = Some(TemporalNoise { rho, sigma });
        print!("{rho:<8.2}");
        for kind in kinds(sigma) {
            let mut spec = RunSpec::new(kind).reps(15);
            opts.apply_to(&mut spec);
            let mean = scenario.execute_mean(&spec).expect("simulation succeeds");
            print!("{mean:>13.2}");
        }
        println!();
    }

    println!("\nrho = 0 reproduces the paper's i.i.d. setting; at high rho the");
    println!("out-of-order phase 1 (RUMR vs RUMR-plain) and the reactive tail");
    println!("matter far more, validating the paper's stationarity caveat.");
}
