//! Ablation studies for the design choices DESIGN.md calls out (beyond the
//! paper's own Fig. 6/7 ablations):
//!
//! 1. **Adaptive vs oracle** — RUMR with online error estimation (the
//!    paper's §6 future work) against RUMR with the error given, plain UMR,
//!    and Factoring.
//! 2. **Factoring factor** — phase 2 with `f ∈ {1.5, 3, 4}` against the
//!    classic `f = 2`.
//! 3. **Minimum chunk bound** — the §4.2(iii) error-aware bound
//!    `(cLat + nLat·N)/error` against the error-unaware `cLat + nLat·N`.
//!
//! All series are normalized to original RUMR (values > 1 mean original
//! RUMR wins). Accepts the standard harness flags.

use dls_experiments::{
    parse_env, relative_series, render_series, run_sweep, series_csv, write_file, Competitor,
};
use std::path::Path;

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let studies: [(&str, &str, Vec<Competitor>); 3] = [
        (
            "Ablation 1: online error estimation vs oracle error (normalized to RUMR)",
            "ablation_adaptive.csv",
            vec![
                Competitor::RumrKnown,
                Competitor::RumrAdaptive,
                Competitor::Umr,
                Competitor::Factoring,
            ],
        ),
        (
            "Ablation 2: phase-2 factoring factor (normalized to RUMR with f = 2)",
            "ablation_factor.csv",
            vec![
                Competitor::RumrKnown,
                Competitor::RumrFactor(1.5),
                Competitor::RumrFactor(3.0),
                Competitor::RumrFactor(4.0),
            ],
        ),
        (
            "Ablation 3: error-aware vs error-unaware minimum chunk bound",
            "ablation_bound.csv",
            vec![Competitor::RumrKnown, Competitor::RumrUnawareBound],
        ),
    ];

    for (title, csv_name, competitors) in studies {
        let sweep = run_sweep(&opts.sweep, &competitors);
        let series = relative_series(&sweep, |_| true);
        println!("{}", render_series(title, &series));
        if let Some(dir) = &opts.csv {
            let path = Path::new(dir).join(csv_name);
            write_file(&path, &series_csv(&series)).expect("write CSV");
            eprintln!("wrote {}", path.display());
        }
    }
}
