//! Self-scheduling family study (Hagerup '97 style): the decreasing-chunk
//! policies that the robustness side of the RUMR design draws from —
//! Factoring, FSC, GSS, TSS and unit self-scheduling — compared against
//! RUMR and the latency-aware one-round schedule, across the error range,
//! on one representative platform per latency regime.
//!
//! Flags: `--reps N`, `--seed N`.

use rumr::{RunSpec, Scenario, SchedulerKind};

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let reps = opts.reps_or(10);

    for (regime, clat, nlat) in [("low latency", 0.1, 0.05), ("high latency", 0.5, 0.5)] {
        println!("=== {regime}: N = 20, B = 1.6N, cLat = {clat}, nLat = {nlat} ({reps} reps) ===");
        print!("{:<7}", "error");
        let kinds = |error: f64| {
            [
                SchedulerKind::rumr_known_error(error),
                SchedulerKind::OneRound,
                SchedulerKind::Factoring,
                SchedulerKind::Fsc { error },
                SchedulerKind::Gss,
                SchedulerKind::Tss,
                SchedulerKind::SelfScheduling { unit: 5.0 },
            ]
        };
        for kind in kinds(0.0) {
            print!("{:>11}", kind.label());
        }
        println!();
        for step in 0..=5 {
            let error = step as f64 * 0.1;
            let scenario = Scenario::table1(20, 1.6, clat, nlat, error);
            print!("{error:<7.1}");
            for kind in kinds(error) {
                let mut spec = RunSpec::new(kind).reps(10);
                opts.apply_to(&mut spec);
                let mean = scenario.execute_mean(&spec).expect("simulation succeeds");
                print!("{mean:>11.2}");
            }
            println!();
        }
        println!();
    }

    println!("The decreasing-chunk family trades latency overhead for robustness;");
    println!("RUMR's two phases aim to take the best of both columns.");
}
