//! Generic sweep: runs the paper's competitor set over the grid and dumps
//! every cell (platform point × error × per-algorithm mean makespan) as
//! CSV — the raw material behind every table and figure.

use std::fmt::Write as _;

use dls_experiments::{paper_competitors, parse_env, run_sweep, write_file};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let sweep = run_sweep(&opts.sweep, &paper_competitors());

    let mut csv = String::from("n,ratio,clat,nlat,error");
    for label in &sweep.labels {
        let _ = write!(csv, ",{label}");
    }
    csv.push('\n');
    for cell in &sweep.cells {
        let _ = write!(
            csv,
            "{},{},{},{},{}",
            cell.point.n,
            cell.point.ratio,
            cell.point.comp_latency,
            cell.point.net_latency,
            cell.error
        );
        for m in &cell.means {
            let _ = write!(csv, ",{m:.6}");
        }
        csv.push('\n');
    }

    match opts.csv {
        Some(path) => {
            write_file(&path, &csv).expect("write CSV");
            eprintln!("wrote {} cells to {}", sweep.cells.len(), path.display());
        }
        None => print!("{csv}"),
    }
}
