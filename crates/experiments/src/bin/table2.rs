//! Reproduces Table 2: the percentage of experiments in which RUMR
//! outperforms UMR, MI-1..4, and Factoring, per error band.

use dls_experiments::{
    overall_win_rate, paper_competitors, parse_env, render_win_rate, run_sweep, win_rate_csv,
    win_rate_table, write_file,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let sweep = run_sweep(&opts.sweep, &paper_competitors());
    let table = win_rate_table(&sweep, 1.0);
    print!(
        "{}",
        render_win_rate(
            "Table 2: % of experiments in which RUMR outperforms each algorithm",
            &table
        )
    );
    println!(
        "Overall: RUMR outperforms competitors in {:.2}% of comparisons (paper: 79%)",
        overall_win_rate(&sweep)
    );
    if let Some(path) = opts.csv {
        write_file(&path, &win_rate_csv(&table)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
