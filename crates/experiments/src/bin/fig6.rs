//! Reproduces Fig. 6: RUMR scheduling a *fixed* percentage of the workload
//! in phase 1 (50–90 %), normalized to the original error-driven RUMR,
//! versus error.

use dls_experiments::ascii_chart;
use dls_experiments::{
    parse_env, relative_series, render_series, run_sweep, series_csv, write_file, Competitor,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let competitors = vec![
        Competitor::RumrKnown, // reference (original RUMR)
        Competitor::RumrFixed(0.5),
        Competitor::RumrFixed(0.6),
        Competitor::RumrFixed(0.7),
        Competitor::RumrFixed(0.8),
        Competitor::RumrFixed(0.9),
    ];
    let sweep = run_sweep(&opts.sweep, &competitors);
    let series = relative_series(&sweep, |_| true);
    print!(
        "{}",
        render_series(
            "Fig 6: fixed phase-1 fraction RUMR normalized to original RUMR vs error",
            &series
        )
    );
    print!(
        "\n{}",
        ascii_chart(
            "(relative makespan vs error; values above the 1.00 line mean RUMR wins)",
            &series,
            70,
            16
        )
    );
    if let Some(path) = opts.csv {
        write_file(&path, &series_csv(&series)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
