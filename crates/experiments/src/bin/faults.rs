//! Fault-degradation sweep: what does an unreliable platform cost each
//! scheduler, with and without the recovery wrapper?
//!
//! For every (scheduler, MTTF) cell the sweep runs seeded crash-recovery
//! Poisson faults and reports, averaged over seeds:
//!
//! * **makespan x** — makespan relative to the same scheduler's fault-free
//!   run with the same seed (1.00 = no degradation);
//! * **done %** — fraction of the workload actually computed. Plain
//!   schedulers lose destroyed chunks for good; the `recovering(...)`
//!   variants redispatch them and should stay at 100 %.
//!
//! Everything is seeded and iterated in a fixed order, so the output is
//! bit-for-bit reproducible across runs. Takes the standard flag set
//! (`--reps N` seeds per cell, `--seed N` first seed, `--csv PATH`):
//!
//! ```text
//! cargo run --release --bin faults [-- --reps N --seed N --csv PATH]
//! ```

use dls_experiments::write_file;
use rumr::{FaultModel, PoissonFaults, RecoveryConfig, RunSpec, Scenario, SchedulerKind};

const ERROR: f64 = 0.3;
/// Mean time to failure per worker (s); the fault-free makespan is ~120 s,
/// so these span "rare", "likely once", and "several times per run".
const MTTFS: [f64; 3] = [400.0, 120.0, 40.0];
const MTTR: f64 = 15.0;
const HORIZON: f64 = 20_000.0;

struct CellStats {
    makespan_ratio: f64,
    completion: f64,
}

fn run_cell(scenario: &Scenario, base: &RunSpec, mttf: f64, recovering: bool) -> CellStats {
    let mut ratio_sum = 0.0;
    let mut completion_sum = 0.0;
    for seed in base.seeds() {
        let fault_free = base.clone().seed(seed);
        let baseline = scenario
            .execute(&fault_free)
            .expect("fault-free run")
            .makespan;
        let mut faulty = fault_free.faults(FaultModel::Poisson(PoissonFaults::crash_recovery(
            mttf, MTTR, HORIZON, seed,
        )));
        if recovering {
            faulty = faulty.recovering(RecoveryConfig::default());
        }
        let result = scenario.execute(&faulty).expect("faulty run");
        ratio_sum += result.makespan / baseline;
        completion_sum += result.completed_work() / scenario.w_total;
    }
    let n = base.reps as f64;
    CellStats {
        makespan_ratio: ratio_sum / n,
        completion: completion_sum / n,
    }
}

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let csv_path = opts.csv.clone();

    let scenario = Scenario::table1(10, 1.5, 0.2, 0.2, ERROR);
    let algorithms: [(&str, SchedulerKind); 3] = [
        ("umr", SchedulerKind::Umr),
        ("rumr", SchedulerKind::rumr_known_error(ERROR)),
        ("factoring", SchedulerKind::Factoring),
    ];

    println!("Fault-degradation sweep (crash-recovery Poisson faults)");
    let mut probe = RunSpec::new(SchedulerKind::Umr).reps(3);
    opts.apply_to(&mut probe);
    println!(
        "N = 10, W = 1000, error = {ERROR}, MTTR = {MTTR} s, {} seeds per cell\n",
        probe.reps
    );
    println!(
        "{:<22} {:>9} {:>11} {:>8}",
        "scheduler", "MTTF (s)", "makespan x", "done %"
    );
    let mut csv = String::from("scheduler,recovering,mttf,makespan_ratio,completion\n");
    for (name, kind) in &algorithms {
        let mut base = RunSpec::new(*kind).reps(3);
        opts.apply_to(&mut base);
        for recovering in [false, true] {
            let label = if recovering {
                format!("recovering({name})")
            } else {
                (*name).to_string()
            };
            for mttf in MTTFS {
                let cell = run_cell(&scenario, &base, mttf, recovering);
                println!(
                    "{:<22} {:>9} {:>11.4} {:>8.2}",
                    label,
                    mttf,
                    cell.makespan_ratio,
                    cell.completion * 100.0
                );
                csv.push_str(&format!(
                    "{name},{recovering},{mttf},{:.6},{:.6}\n",
                    cell.makespan_ratio, cell.completion
                ));
            }
        }
        println!();
    }
    println!("makespan x is relative to the same scheduler's fault-free run.");

    if let Some(path) = csv_path {
        write_file(&path, &csv).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
