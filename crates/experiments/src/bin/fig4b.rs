//! Reproduces Fig. 4(b): mean makespan of each competitor normalized to
//! RUMR, versus error, restricted to the low-latency subset
//! `cLat < 0.3` and `nLat < 0.3`.

use dls_experiments::ascii_chart;
use dls_experiments::{
    fig4b, paper_competitors, parse_env, render_series, run_sweep, series_csv, write_file,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let sweep = run_sweep(&opts.sweep, &paper_competitors());
    let series = fig4b(&sweep);
    print!(
        "{}",
        render_series(
            "Fig 4(b): makespan normalized to RUMR vs error (cLat < 0.3, nLat < 0.3)",
            &series
        )
    );
    print!(
        "\n{}",
        ascii_chart(
            "(relative makespan vs error; values above the 1.00 line mean RUMR wins)",
            &series,
            70,
            16
        )
    );
    if let Some(path) = opts.csv {
        write_file(&path, &series_csv(&series)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
