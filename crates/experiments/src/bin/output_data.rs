//! Output-data study: result collection over the shared master interface.
//!
//! The paper's model transfers input only ("we only consider transfer of
//! application input data"; refs [11, 12] handle output but with a single
//! round). This experiment turns on the output-data extension — each
//! computed chunk returns `output_ratio · chunk` units of results that
//! compete with input dispatches for the master's interface — and asks
//! whether RUMR's ranking survives.
//!
//! Expected shape: output traffic hurts everyone, but it hurts *reactive*
//! schedulers more: each phase-2/factoring chunk's return steals link time
//! exactly when the master needs it for the next greedy dispatch, while
//! UMR's input schedule is front-loaded and overlaps the (back-loaded)
//! returns naturally.
//!
//! Flags: `--reps N`, `--seed N`.

use rumr::{RunSpec, Scenario, SchedulerKind};

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let reps = opts.reps_or(10);
    let error = 0.3;

    let kinds = [
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::Umr,
        SchedulerKind::Factoring,
        SchedulerKind::EqualStatic,
    ];

    println!("Result collection: N = 16, B = 1.6N, cLat = 0.2, nLat = 0.1, error = {error}");
    println!("({reps} reps; makespans include returning output to the master)\n");
    print!("{:<14}", "output ratio");
    for kind in &kinds {
        print!("{:>12}", kind.label());
    }
    println!();

    let scenario = Scenario::table1(16, 1.6, 0.2, 0.1, error);
    for &ratio in &[0.0, 0.1, 0.25, 0.5, 1.0] {
        print!("{ratio:<14.2}");
        for kind in &kinds {
            let mut spec = RunSpec::new(*kind).reps(10);
            opts.apply_to(&mut spec);
            spec.config.output_ratio = ratio;
            let mean = scenario.execute_mean(&spec).expect("simulation succeeds");
            print!("{mean:>12.2}");
        }
        println!();
    }

    println!("\nratio 0 is the paper's input-only model; ratio 1 returns as much");
    println!("data as was sent (e.g. image filtering rather than feature counts).");
}
