//! Reproduces Fig. 5: relative makespans at the single high-`nLat` point
//! `N = 20, B = 36 (r = 1.8), cLat = 0.3, nLat = 0.9`.
//!
//! Because this is a single platform point, `--full` only affects the error
//! step and repetition count.

use dls_experiments::ascii_chart;
use dls_experiments::{
    fig5_point, paper_competitors, parse_env, relative_series, render_series, run_sweep,
    series_csv, write_file, Table1Grid,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut sweep_cfg = opts.sweep;
    sweep_cfg.grid = Table1Grid::single(fig5_point());
    let sweep = run_sweep(&sweep_cfg, &paper_competitors());
    let series = relative_series(&sweep, |_| true);
    print!(
        "{}",
        render_series(
            "Fig 5: makespan normalized to RUMR vs error (N=20, B=36, cLat=0.3, nLat=0.9)",
            &series
        )
    );
    print!(
        "\n{}",
        ascii_chart(
            "(relative makespan vs error; values above the 1.00 line mean RUMR wins)",
            &series,
            70,
            16
        )
    );
    if let Some(path) = opts.csv {
        write_file(&path, &series_csv(&series)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
