//! Multi-load arbitration smoke/stress sweep: concurrent divisible loads
//! on one platform under every arbitration policy.
//!
//! For each (scenario, arrival family, policy) cell the bin executes a
//! multi-load run with the engine's streaming invariant audit *and* the
//! job-level audit (per-job work conservation, release compliance,
//! cross-job master exclusivity) enabled, then checks the oracle-style
//! floors: every completed job's response time must dominate its analytic
//! lower bound (stretch ≥ 1), and the set makespan must dominate the
//! whole-set bound.
//!
//! ```text
//! cargo run --release -p dls-experiments --bin multi_load -- --quick
//! ```
//!
//! Exits non-zero on any audit finding, any incomplete job, or any
//! stretch below 1. `--queue heap|calendar` selects the event-queue
//! backend (CI runs both); `--csv PATH` dumps one fairness row per cell.

use std::fmt::Write as _;
use std::process::exit;

use dls_experiments::{write_file, Table1Grid};
use rumr::{JobSet, MultiPolicy, MultiRunSpec, Scenario, SchedulerKind, SimConfig, TraceMode};

/// Tolerance on the stretch ≥ 1 invariant (float noise only).
const STRETCH_EPS: f64 = 1e-9;
/// Relative tolerance on per-job completed-work conservation.
const WORK_EPS: f64 = 1e-6;

fn scenarios(full: bool) -> Vec<(&'static str, Scenario)> {
    let mut v = vec![
        ("table1_n10", Scenario::table1(10, 1.5, 0.2, 0.2, 0.2)),
        ("het_n8", Scenario::heterogeneous_demo(8, 0.2)),
    ];
    if full {
        v.push(("table1_n20", Scenario::table1(20, 1.8, 0.3, 0.1, 0.3)));
    }
    v
}

fn arrival_families(seed: u64, full: bool) -> Vec<(&'static str, JobSet)> {
    let (n_poisson, per_burst) = if full { (8, 3) } else { (5, 2) };
    vec![
        (
            "simultaneous",
            JobSet::simultaneous(&[400.0, 250.0, 150.0, 100.0]).expect("sizes are valid"),
        ),
        ("poisson", JobSet::poisson(n_poisson, 40.0, 200.0, seed)),
        ("bursty", JobSet::bursty(2, per_burst, 120.0, 180.0, seed)),
    ]
}

fn main() {
    let opts = match dls_experiments::parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    };
    // This bin has its own pinned cells rather than the generic grid, so
    // --full is detected by the grid the flag selected.
    let full = opts.sweep.grid.len() > Table1Grid::quick().len();
    let seed = opts.sweep.root_seed;
    let queue = opts.sweep.queue_backend;

    let mut csv = String::from(
        "scenario,arrivals,policy,queue,jobs,completed_jobs,makespan,\
         max_stretch,mean_stretch,jain_index,audit_findings\n",
    );
    let mut table = format!(
        "{:<12} {:<14} {:<12} {:>5} {:>10} {:>12} {:>12} {:>8}\n",
        "scenario", "arrivals", "policy", "jobs", "makespan", "max_stretch", "mean_stretch", "jain"
    );
    let mut violations = 0usize;
    let mut cells = 0usize;

    for (scenario_name, scenario) in scenarios(full) {
        for (family, set) in arrival_families(seed, full) {
            for policy in MultiPolicy::ALL {
                cells += 1;
                let config = SimConfig {
                    trace_mode: TraceMode::Full,
                    audit: true,
                    queue_backend: queue,
                    ..Default::default()
                };
                let spec = MultiRunSpec::from_job_set(&set, SchedulerKind::Factoring, policy)
                    .seed(seed)
                    .config(config);
                let result = match scenario.execute_jobs(&spec) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!(
                            "RUN FAILED: {scenario_name}/{family}/{} on {}: {e}",
                            policy.label(),
                            queue.name()
                        );
                        violations += 1;
                        continue;
                    }
                };

                let audit_findings = result.total_audit_findings();
                if audit_findings > 0 {
                    for f in result.sim.audit.as_deref().unwrap_or(&[]) {
                        eprintln!(
                            "AUDIT(engine): {scenario_name}/{family}/{}: {f}",
                            policy.label()
                        );
                    }
                    for f in &result.job_audit {
                        eprintln!(
                            "AUDIT(jobs): {scenario_name}/{family}/{}: {f}",
                            policy.label()
                        );
                    }
                    violations += audit_findings;
                }
                for j in &result.jobs {
                    if (j.completed - j.size).abs() > WORK_EPS * j.size {
                        eprintln!(
                            "INCOMPLETE: {scenario_name}/{family}/{} job {}: {} of {}",
                            policy.label(),
                            j.job,
                            j.completed,
                            j.size
                        );
                        violations += 1;
                    }
                    match j.stretch {
                        Some(s) if s >= 1.0 - STRETCH_EPS => {}
                        Some(s) => {
                            eprintln!(
                                "STRETCH: {scenario_name}/{family}/{} job {} beats its lower \
                                 bound: {s}",
                                policy.label(),
                                j.job
                            );
                            violations += 1;
                        }
                        None => {
                            eprintln!(
                                "NO COMPLETION: {scenario_name}/{family}/{} job {}",
                                policy.label(),
                                j.job
                            );
                            violations += 1;
                        }
                    }
                }
                let set_bound = set.makespan_lower_bound(&scenario.platform);
                if result.sim.makespan < set_bound - STRETCH_EPS {
                    eprintln!(
                        "SET BOUND: {scenario_name}/{family}/{} makespan {} beats the set \
                         bound {set_bound}",
                        policy.label(),
                        result.sim.makespan
                    );
                    violations += 1;
                }

                let f = &result.fairness;
                let _ = writeln!(
                    csv,
                    "{scenario_name},{family},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{audit_findings}",
                    policy.label(),
                    queue.name(),
                    result.jobs.len(),
                    f.completed_jobs,
                    result.sim.makespan,
                    f.max_stretch,
                    f.mean_stretch,
                    f.jain_index
                );
                let _ = writeln!(
                    table,
                    "{scenario_name:<12} {family:<14} {:<12} {:>5} {:>10.2} {:>12.4} {:>12.4} {:>8.4}",
                    policy.label(),
                    result.jobs.len(),
                    result.sim.makespan,
                    f.max_stretch,
                    f.mean_stretch,
                    f.jain_index
                );
            }
        }
    }

    println!(
        "multi-load sweep ({} backend, {cells} cells):\n\n{table}",
        queue.name()
    );
    if let Some(path) = &opts.csv {
        write_file(path, &csv).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
    if violations > 0 {
        eprintln!("{violations} violation(s)");
        exit(1);
    }
    eprintln!("clean: zero audit findings, every job complete, every stretch >= 1");
}
