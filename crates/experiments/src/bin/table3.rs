//! Reproduces Table 3: the percentage of experiments in which RUMR
//! outperforms each algorithm by at least 10 %, per error band.

use dls_experiments::{
    paper_competitors, parse_env, render_win_rate, run_sweep, win_rate_csv, win_rate_table,
    write_file,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let sweep = run_sweep(&opts.sweep, &paper_competitors());
    let table = win_rate_table(&sweep, 1.1);
    print!(
        "{}",
        render_win_rate(
            "Table 3: % of experiments in which RUMR outperforms each algorithm by >= 10%",
            &table
        )
    );
    if let Some(path) = opts.csv {
        write_file(&path, &win_rate_csv(&table)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
