//! Reproduces Fig. 7: RUMR with plain (in-order) UMR in phase 1 normalized
//! to the original (out-of-order) RUMR, versus error.

use dls_experiments::ascii_chart;
use dls_experiments::{
    parse_env, relative_series, render_series, run_sweep, series_csv, write_file, Competitor,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let competitors = vec![Competitor::RumrKnown, Competitor::RumrPlain];
    let sweep = run_sweep(&opts.sweep, &competitors);
    let series = relative_series(&sweep, |_| true);
    print!(
        "{}",
        render_series(
            "Fig 7: plain-phase-1 RUMR normalized to original RUMR vs error",
            &series
        )
    );
    print!(
        "\n{}",
        ascii_chart(
            "(relative makespan vs error; values above the 1.00 line mean RUMR wins)",
            &series,
            70,
            16
        )
    );
    if let Some(path) = opts.csv {
        write_file(&path, &series_csv(&series)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
