//! Full reproduction report: regenerates Tables 2–3 and Figures 4(a), 4(b),
//! 5, 6 and 7 from three shared sweeps (main competitors, Fig. 6 variants,
//! Fig. 7 variants) and writes everything to stdout plus, with `--csv DIR`,
//! one CSV per artifact under DIR.

use std::fmt::Write as _;
use std::path::Path;

use dls_experiments::{
    fig4a, fig4b, fig5_point, overall_win_rate, paper_competitors, parse_env, relative_series,
    render_series, render_win_rate, run_sweep, series_csv, win_rate_csv, win_rate_table,
    write_file, Competitor, Table1Grid,
};

fn main() {
    let opts = match parse_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let csv_dir = opts.csv.clone();
    let save = |name: &str, contents: &str| {
        if let Some(dir) = &csv_dir {
            let path = Path::new(dir).join(name);
            write_file(&path, contents).expect("write CSV");
            eprintln!("wrote {}", path.display());
        }
    };

    let mut out = String::new();

    // Main sweep: RUMR vs UMR, MI-1..4, Factoring.
    eprintln!("[1/4] main competitor sweep ...");
    let main_sweep = run_sweep(&opts.sweep, &paper_competitors());
    let table2 = win_rate_table(&main_sweep, 1.0);
    let _ = writeln!(
        out,
        "{}",
        render_win_rate(
            "Table 2: % of experiments in which RUMR outperforms each algorithm",
            &table2
        )
    );
    let _ = writeln!(
        out,
        "Overall: RUMR outperforms competitors in {:.2}% of comparisons (paper: 79%)\n",
        overall_win_rate(&main_sweep)
    );
    save("table2.csv", &win_rate_csv(&table2));

    let table3 = win_rate_table(&main_sweep, 1.1);
    let _ = writeln!(
        out,
        "{}",
        render_win_rate(
            "Table 3: % of experiments in which RUMR outperforms each algorithm by >= 10%",
            &table3
        )
    );
    save("table3.csv", &win_rate_csv(&table3));

    let s4a = fig4a(&main_sweep);
    let _ = writeln!(
        out,
        "{}",
        render_series(
            "Fig 4(a): makespan normalized to RUMR vs error (all parameters)",
            &s4a
        )
    );
    save("fig4a.csv", &series_csv(&s4a));

    let s4b = fig4b(&main_sweep);
    let _ = writeln!(
        out,
        "{}",
        render_series(
            "Fig 4(b): makespan normalized to RUMR vs error (cLat < 0.3, nLat < 0.3)",
            &s4b
        )
    );
    save("fig4b.csv", &series_csv(&s4b));

    // Fig 5: single point (reuses the main sweep's competitor set).
    eprintln!("[2/4] fig 5 point sweep ...");
    let mut fig5_cfg = opts.sweep.clone();
    fig5_cfg.grid = Table1Grid::single(fig5_point());
    let fig5_sweep = run_sweep(&fig5_cfg, &paper_competitors());
    let s5 = relative_series(&fig5_sweep, |_| true);
    let _ = writeln!(
        out,
        "{}",
        render_series(
            "Fig 5: makespan normalized to RUMR vs error (N=20, B=36, cLat=0.3, nLat=0.9)",
            &s5
        )
    );
    save("fig5.csv", &series_csv(&s5));

    // Fig 6 sweep: fixed-split variants.
    eprintln!("[3/4] fig 6 ablation sweep ...");
    let fig6_competitors = vec![
        Competitor::RumrKnown,
        Competitor::RumrFixed(0.5),
        Competitor::RumrFixed(0.6),
        Competitor::RumrFixed(0.7),
        Competitor::RumrFixed(0.8),
        Competitor::RumrFixed(0.9),
    ];
    let fig6_sweep = run_sweep(&opts.sweep, &fig6_competitors);
    let s6 = relative_series(&fig6_sweep, |_| true);
    let _ = writeln!(
        out,
        "{}",
        render_series(
            "Fig 6: fixed phase-1 fraction RUMR normalized to original RUMR vs error",
            &s6
        )
    );
    save("fig6.csv", &series_csv(&s6));

    // Fig 7 sweep: in-order phase 1.
    eprintln!("[4/4] fig 7 ablation sweep ...");
    let fig7_competitors = vec![Competitor::RumrKnown, Competitor::RumrPlain];
    let fig7_sweep = run_sweep(&opts.sweep, &fig7_competitors);
    let s7 = relative_series(&fig7_sweep, |_| true);
    let _ = writeln!(
        out,
        "{}",
        render_series(
            "Fig 7: plain-phase-1 RUMR normalized to original RUMR vs error",
            &s7
        )
    );
    save("fig7.csv", &series_csv(&s7));

    println!("{out}");
    if let Some(dir) = &csv_dir {
        let path = Path::new(dir).join("report.txt");
        write_file(&path, &out).expect("write report");
        eprintln!("wrote {}", path.display());
    }
}
