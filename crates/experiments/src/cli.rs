//! A tiny argument parser shared by the table/figure binaries.
//!
//! Supported flags (every binary accepts the same set):
//!
//! ```text
//! --full           use the paper's exact Table 1 grid, 0.02 error step,
//!                  40 repetitions (slow!)
//! --reps N         override repetitions per cell
//! --error-step S   override the error sweep step
//! --seed N         root seed (default fixed, runs are reproducible)
//! --threads N      worker threads (default: all cores)
//! --model M        normal | uniform | inverse
//! --queue Q        heap | calendar (event-queue backend; default calendar)
//! --speeds SPEC    declared | stochastic:SPREAD[:SEED] |
//!                  sandbag:FRACTION:SLOWDOWN[:SEED] |
//!                  adversarial:FRACTION:SLOWDOWN (speed-revelation model)
//! --csv PATH       also write results as CSV to PATH
//! --quiet          suppress progress output
//! --quick          explicit quick mode (the default; opposite of --full)
//! ```

use std::path::PathBuf;

use rumr::{QueueBackend, RunSpec, SpeedModel};

use crate::grid::error_values;
use crate::sweep::{ErrorModelKind, SweepConfig};

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// The sweep configuration implied by the flags.
    pub sweep: SweepConfig,
    /// CSV output path, if requested.
    pub csv: Option<PathBuf>,
    /// `--reps` exactly as given on the command line, if present. Bins whose
    /// natural default differs from the sweep default should use [`Self::reps_or`]
    /// rather than clamping `sweep.reps`, which would silently override an
    /// explicit `--reps`.
    pub explicit_reps: Option<u64>,
}

impl CliOptions {
    /// Repetition count for bins with their own default: the explicit
    /// `--reps` value when one was given, otherwise `default`.
    #[must_use]
    pub fn reps_or(&self, default: u64) -> u64 {
        self.explicit_reps.unwrap_or(default)
    }

    /// Apply the flags that describe a single run to a [`RunSpec`]: the
    /// root seed, the queue backend, and — only when the user passed an
    /// explicit `--reps` — the repetition count, so a bin's own default
    /// (set on the spec beforehand via [`RunSpec::reps`]) survives.
    ///
    /// This replaces the hand-threaded `reps_or(...)` / `sweep.root_seed` /
    /// `sweep.queue_backend` plumbing in the binaries.
    pub fn apply_to(&self, spec: &mut RunSpec) {
        spec.seed = self.sweep.root_seed;
        spec.config.queue_backend = self.sweep.queue_backend;
        if let Some(reps) = self.explicit_reps {
            spec.reps = reps;
        }
    }
}

/// Parse the standard flag set from an iterator of arguments (excluding the
/// program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed values.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOptions, String> {
    let mut full = false;
    let mut reps: Option<u64> = None;
    let mut error_step: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut model: Option<ErrorModelKind> = None;
    let mut queue: Option<QueueBackend> = None;
    let mut speeds: Option<SpeedModel> = None;
    let mut csv: Option<PathBuf> = None;
    let mut quiet = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for =
            |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--full" => full = true,
            // Quick is the default; the explicit flag lets scripts (CI)
            // state the intent without tracking which mode is default.
            "--quick" => full = false,
            "--quiet" => quiet = true,
            "--reps" => {
                reps = Some(
                    value_for("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?,
                )
            }
            "--error-step" => {
                let s: f64 = value_for("--error-step")?
                    .parse()
                    .map_err(|e| format!("--error-step: {e}"))?;
                if !(s > 0.0 && s <= 0.5) {
                    return Err("--error-step must be in (0, 0.5]".into());
                }
                error_step = Some(s);
            }
            "--seed" => {
                seed = Some(
                    value_for("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--threads" => {
                threads = Some(
                    value_for("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--model" => {
                model = Some(match value_for("--model")?.as_str() {
                    "normal" => ErrorModelKind::Normal,
                    "uniform" => ErrorModelKind::Uniform,
                    "inverse" => ErrorModelKind::Inverse,
                    other => return Err(format!("unknown model '{other}'")),
                })
            }
            "--queue" => {
                let v = value_for("--queue")?;
                queue = Some(
                    QueueBackend::parse(&v)
                        .ok_or_else(|| format!("unknown queue backend '{v}'"))?,
                )
            }
            "--speeds" => {
                let v = value_for("--speeds")?;
                speeds = Some(
                    SpeedModel::parse(&v)
                        .ok_or_else(|| format!("malformed speed model '{v}'\n{USAGE}"))?,
                )
            }
            "--csv" => csv = Some(PathBuf::from(value_for("--csv")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }

    let mut sweep = if full {
        SweepConfig::full()
    } else {
        SweepConfig::quick()
    };
    if let Some(r) = reps {
        if r == 0 {
            return Err("--reps must be positive".into());
        }
        sweep.reps = r;
    }
    if let Some(s) = error_step {
        sweep.errors = error_values(s);
    }
    if let Some(s) = seed {
        sweep.root_seed = s;
    }
    if let Some(t) = threads {
        sweep.threads = t;
    }
    if let Some(m) = model {
        sweep.model = m;
    }
    if let Some(q) = queue {
        sweep.queue_backend = q;
    }
    if let Some(s) = speeds {
        sweep.speeds = s;
    }
    sweep.progress = !quiet;

    Ok(CliOptions {
        sweep,
        csv,
        explicit_reps: reps,
    })
}

/// Parse from the process environment.
pub fn parse_env() -> Result<CliOptions, String> {
    parse_args(std::env::args().skip(1))
}

/// Usage string shared by the binaries.
pub const USAGE: &str = "flags: [--full|--quick] [--reps N] [--error-step S] [--seed N] \
[--threads N] [--model normal|uniform|inverse] [--queue heap|calendar] \
[--speeds declared|stochastic:S[:SEED]|sandbag:F:S[:SEED]|adversarial:F:S] [--csv PATH] [--quiet]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.sweep.reps, 10);
        assert_eq!(o.sweep.grid.len(), 144);
        assert_eq!(o.sweep.queue_backend, QueueBackend::Calendar);
        assert!(o.csv.is_none());
    }

    #[test]
    fn full_flag() {
        let o = parse(&["--full"]).unwrap();
        assert_eq!(o.sweep.reps, 40);
        assert_eq!(o.sweep.grid.len(), 9 * 9 * 11 * 11);
        assert_eq!(o.sweep.errors.len(), 26);
    }

    #[test]
    fn overrides() {
        let o = parse(&[
            "--reps",
            "5",
            "--seed",
            "9",
            "--threads",
            "2",
            "--model",
            "uniform",
            "--queue",
            "heap",
            "--csv",
            "/tmp/x.csv",
            "--error-step",
            "0.1",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(o.sweep.reps, 5);
        assert_eq!(o.sweep.root_seed, 9);
        assert_eq!(o.sweep.threads, 2);
        assert_eq!(o.sweep.model, ErrorModelKind::Uniform);
        assert_eq!(o.sweep.queue_backend, QueueBackend::Heap);
        assert_eq!(o.csv.unwrap().to_str().unwrap(), "/tmp/x.csv");
        assert_eq!(o.sweep.errors.len(), 6);
        assert!(!o.sweep.progress);
    }

    #[test]
    fn explicit_reps_override_bin_defaults() {
        // A bin with `reps_or(10)` must respect an explicit smaller --reps
        // (the old `reps.max(10)` clamp silently ignored it).
        let o = parse(&["--reps", "3"]).unwrap();
        assert_eq!(o.explicit_reps, Some(3));
        assert_eq!(o.reps_or(10), 3);
        let o = parse(&[]).unwrap();
        assert_eq!(o.explicit_reps, None);
        assert_eq!(o.reps_or(10), 10);
    }

    #[test]
    fn apply_to_folds_flags_into_spec() {
        use rumr::SchedulerKind;
        let o = parse(&["--seed", "9", "--queue", "heap"]).unwrap();
        let mut spec = RunSpec::new(SchedulerKind::Umr).reps(7);
        o.apply_to(&mut spec);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.reps, 7, "bin default survives without --reps");
        assert_eq!(spec.config.queue_backend, QueueBackend::Heap);

        let o = parse(&["--reps", "3"]).unwrap();
        o.apply_to(&mut spec);
        assert_eq!(spec.reps, 3, "explicit --reps overrides the bin default");
    }

    #[test]
    fn quick_flag_and_speeds() {
        let o = parse(&["--quick"]).unwrap();
        assert_eq!(o.sweep.reps, 10);
        assert_eq!(o.sweep.speeds, SpeedModel::Declared);

        let o = parse(&["--speeds", "adversarial:0.25:2"]).unwrap();
        assert_eq!(
            o.sweep.speeds,
            SpeedModel::Adversarial {
                fraction: 0.25,
                slowdown: 2.0
            }
        );
        let o = parse(&["--speeds", "stochastic:0.3:7"]).unwrap();
        assert_eq!(
            o.sweep.speeds,
            SpeedModel::Stochastic {
                spread: 0.3,
                seed: 7
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--speeds", "warp:9"]).is_err());
        assert!(parse(&["--speeds", "stochastic:1.5"]).is_err());
        assert!(parse(&["--reps"]).is_err());
        assert!(parse(&["--reps", "zero"]).is_err());
        assert!(parse(&["--reps", "0"]).is_err());
        assert!(parse(&["--model", "weird"]).is_err());
        assert!(parse(&["--queue", "ladder"]).is_err());
        assert!(parse(&["--error-step", "0"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
