//! Plain-text and CSV rendering of tables and series.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::figures::RelativeSeries;
use crate::tables::WinRateTable;

/// Render a win-rate table in the paper's layout (rows = competitors,
/// columns = error bands).
pub fn render_win_rate(title: &str, table: &WinRateTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<12}", "Algorithm");
    for band in &table.bands {
        let _ = write!(out, "{band:>10}");
    }
    let _ = writeln!(out);
    for (row, percentages) in table.rows.iter().zip(&table.percentages) {
        let _ = write!(out, "{row:<12}");
        for p in percentages {
            let _ = write!(out, "{p:>10.2}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<12}", "(cells)");
    for c in &table.band_counts {
        let _ = write!(out, "{c:>10}");
    }
    let _ = writeln!(out);
    out
}

/// Render a relative-makespan series set: rows = error values, columns =
/// competitors (values are competitor/RUMR mean makespan ratios).
pub fn render_series(title: &str, series: &RelativeSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<8}", "error");
    for label in &series.labels {
        let _ = write!(out, "{label:>12}");
    }
    let _ = writeln!(out, "{:>8}", "cells");
    for (i, &e) in series.errors.iter().enumerate() {
        let _ = write!(out, "{e:<8.2}");
        for values in &series.values {
            if values[i].is_nan() {
                let _ = write!(out, "{:>12}", "-");
            } else {
                let _ = write!(out, "{:>12.4}", values[i]);
            }
        }
        let _ = writeln!(out, "{:>8}", series.cell_counts[i]);
    }
    out
}

/// Write a win-rate table as CSV.
pub fn win_rate_csv(table: &WinRateTable) -> String {
    let mut out = String::from("algorithm");
    for band in &table.bands {
        let _ = write!(out, ",{band}");
    }
    out.push('\n');
    for (row, percentages) in table.rows.iter().zip(&table.percentages) {
        let _ = write!(out, "{row}");
        for p in percentages {
            let _ = write!(out, ",{p:.4}");
        }
        out.push('\n');
    }
    out
}

/// Write a relative-makespan series set as CSV (long format:
/// `error,algorithm,relative_makespan,cells`).
pub fn series_csv(series: &RelativeSeries) -> String {
    let mut out = String::from("error,algorithm,relative_makespan,cells\n");
    for (i, &e) in series.errors.iter().enumerate() {
        for (label, values) in series.labels.iter().zip(&series.values) {
            let _ = writeln!(
                out,
                "{e:.4},{label},{:.6},{}",
                values[i], series.cell_counts[i]
            );
        }
    }
    out
}

/// Write a string to a file, creating parent directories as needed.
pub fn write_file(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> WinRateTable {
        WinRateTable {
            rows: vec!["UMR".into(), "Factoring".into()],
            bands: vec!["0-0.08".into(), "0.1-0.18".into()],
            percentages: vec![vec![54.96, 56.6], vec![98.21, 94.06]],
            band_counts: vec![100, 100],
        }
    }

    fn series() -> RelativeSeries {
        RelativeSeries {
            errors: vec![0.0, 0.1],
            labels: vec!["UMR".into()],
            values: vec![vec![1.05, f64::NAN]],
            cell_counts: vec![10, 0],
        }
    }

    #[test]
    fn win_rate_rendering() {
        let text = render_win_rate("Table 2", &table());
        assert!(text.contains("Table 2"));
        assert!(text.contains("UMR"));
        assert!(text.contains("54.96"));
        assert!(text.contains("0.1-0.18"));
    }

    #[test]
    fn series_rendering_handles_nan() {
        let text = render_series("Fig 4a", &series());
        assert!(text.contains("1.0500"));
        assert!(text.contains('-'));
    }

    #[test]
    fn csv_formats() {
        let csv = win_rate_csv(&table());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "algorithm,0-0.08,0.1-0.18");
        assert!(lines.next().unwrap().starts_with("UMR,54.9600"));

        let csv = series_csv(&series());
        assert!(csv.starts_with("error,algorithm,relative_makespan,cells\n"));
        assert!(csv.contains("0.0000,UMR,1.050000,10"));
    }

    #[test]
    fn file_writing() {
        let dir = std::env::temp_dir().join("dls_report_test");
        let path = dir.join("nested/out.csv");
        write_file(&path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
