//! The parallel sweep engine.
//!
//! A sweep runs a set of competitor algorithms over (platform grid × error
//! values × repetitions) and aggregates, per *cell* (platform point, error
//! value), the mean makespan of each competitor over the repetitions —
//! exactly the granularity at which the paper reports (each data point is
//! an average over 40 repetitions).
//!
//! Work is fanned out over std scoped threads; each cell's seeds are derived
//! deterministically from (root seed, cell index, repetition) so results are
//! independent of thread count and scheduling order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dls_numerics::rng::SeedDeriver;
use dls_sim::ErrorModel;
use rumr::{
    QueueBackend, RumrConfig, RunSpec, Scenario, SchedulerKind, SimConfig, SpeedModel,
    TraceMetrics, TraceMode,
};

use crate::grid::{GridPoint, Table1Grid};

/// Which family of ratio distribution the sweep injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorModelKind {
    /// Multiplicative truncated normal (default; see `dls-sim` docs).
    Normal,
    /// Matched-variance uniform.
    Uniform,
    /// The paper-literal inverse form with a floored ratio.
    Inverse,
}

impl ErrorModelKind {
    /// Instantiate the model at a given error magnitude.
    pub fn model(self, error: f64) -> ErrorModel {
        if error <= 0.0 {
            return ErrorModel::None;
        }
        match self {
            ErrorModelKind::Normal => ErrorModel::TruncatedNormal { error },
            ErrorModelKind::Uniform => ErrorModel::Uniform { error },
            ErrorModelKind::Inverse => ErrorModel::TruncatedNormalInverse { error },
        }
    }
}

/// A competitor in a sweep. Some algorithms are parameterized by the cell's
/// error magnitude (RUMR's known-error split, FSC's chunk formula), so the
/// mapping to a concrete [`SchedulerKind`] happens per cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Competitor {
    /// Original RUMR with the error magnitude known.
    RumrKnown,
    /// RUMR with in-order (plain UMR) phase 1 — Fig. 7 ablation.
    RumrPlain,
    /// RUMR with a fixed phase-1 fraction — Fig. 6 ablation.
    RumrFixed(f64),
    /// Plain UMR.
    Umr,
    /// Multi-installment with the given installment count.
    Mi(usize),
    /// Factoring.
    Factoring,
    /// Fixed-size chunking (error-aware chunk formula).
    Fsc,
    /// One round of equal chunks.
    EqualStatic,
    /// Adaptive RUMR (online error estimation, no oracle input).
    RumrAdaptive,
    /// RUMR with a non-default phase-2 factoring factor — ablation of the
    /// `f = 2` design choice.
    RumrFactor(f64),
    /// RUMR with the error-unaware minimum chunk bound — ablation of the
    /// §4.2(iii) error-aware bound.
    RumrUnawareBound,
    /// Closed-form one-round heterogeneous baseline (the speed-robust
    /// sweep's most commitment-heavy competitor: everything is dispatched
    /// before any realized rate can be observed).
    OneRound,
}

impl Competitor {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Competitor::RumrKnown => "RUMR".into(),
            Competitor::RumrPlain => "RUMR-plain".into(),
            Competitor::RumrFixed(p) => format!("RUMR_{:.0}", p * 100.0),
            Competitor::Umr => "UMR".into(),
            Competitor::Mi(x) => format!("MI-{x}"),
            Competitor::Factoring => "Factoring".into(),
            Competitor::Fsc => "FSC".into(),
            Competitor::EqualStatic => "EqualStatic".into(),
            Competitor::RumrAdaptive => "RUMR-adaptive".into(),
            Competitor::RumrFactor(f) => format!("RUMR-f{f}"),
            Competitor::RumrUnawareBound => "RUMR-ub".into(),
            Competitor::OneRound => "OneRound".into(),
        }
    }

    /// Concrete scheduler for a cell with the given error magnitude.
    pub fn kind_for(&self, error: f64) -> SchedulerKind {
        match *self {
            Competitor::RumrKnown => SchedulerKind::rumr_known_error(error),
            Competitor::RumrPlain => SchedulerKind::rumr_plain_phase1(error),
            Competitor::RumrFixed(p) => {
                SchedulerKind::Rumr(RumrConfig::with_fixed_fraction(p, Some(error)))
            }
            Competitor::Umr => SchedulerKind::Umr,
            Competitor::Mi(x) => SchedulerKind::Mi { installments: x },
            Competitor::Factoring => SchedulerKind::Factoring,
            Competitor::Fsc => SchedulerKind::Fsc { error },
            Competitor::EqualStatic => SchedulerKind::EqualStatic,
            Competitor::RumrAdaptive => SchedulerKind::AdaptiveRumr,
            Competitor::RumrFactor(f) => {
                let mut cfg = RumrConfig::with_known_error(error);
                cfg.factor = f;
                SchedulerKind::Rumr(cfg)
            }
            Competitor::RumrUnawareBound => {
                let mut cfg = RumrConfig::with_known_error(error);
                cfg.error_aware_bound = false;
                SchedulerKind::Rumr(cfg)
            }
            Competitor::OneRound => SchedulerKind::OneRound,
        }
    }
}

/// The paper's Table 2/3 and Fig. 4/5 competitor set; RUMR first (it is the
/// normalization reference).
pub fn paper_competitors() -> Vec<Competitor> {
    vec![
        Competitor::RumrKnown,
        Competitor::Umr,
        Competitor::Mi(1),
        Competitor::Mi(2),
        Competitor::Mi(3),
        Competitor::Mi(4),
        Competitor::Factoring,
    ]
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Platform grid.
    pub grid: Table1Grid,
    /// Error magnitudes to sweep.
    pub errors: Vec<f64>,
    /// Repetitions per cell (the paper uses 40).
    pub reps: u64,
    /// Root seed for deterministic seed derivation.
    pub root_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Error-model family.
    pub model: ErrorModelKind,
    /// Total workload per run.
    pub w_total: f64,
    /// Print progress to stderr.
    pub progress: bool,
    /// How much the engine records per run. [`TraceMode::Off`] (the
    /// default) is the fast path for makespan-only sweeps;
    /// [`TraceMode::MetricsOnly`] adds cheap incremental link/gap metrics;
    /// [`TraceMode::Full`] is the self-checking configuration — the
    /// complete event trace is recorded, validated against the engine's
    /// protocol invariants, and distilled into [`TraceMetrics`] per run.
    pub trace_mode: TraceMode,
    /// Event-queue backend for every engine the sweep builds. Results are
    /// bit-identical across backends; this only changes performance.
    pub queue_backend: QueueBackend,
    /// Declared-vs-realized speed model applied to every run. With an
    /// active model each cell also aggregates per-competitor robustness
    /// ratios ([`Cell::robustness`]) against clairvoyant twins.
    pub speeds: SpeedModel,
    /// Run the engine's streaming invariant audit on every run and count
    /// findings into [`Cell::audit_findings`].
    pub audit: bool,
}

impl SweepConfig {
    /// Quick defaults: sub-grid, 0.05 error step, 10 repetitions.
    pub fn quick() -> Self {
        SweepConfig {
            grid: Table1Grid::quick(),
            errors: crate::grid::error_values(0.05),
            reps: 10,
            root_seed: 20030623, // HPDC'03 conference date
            threads: 0,
            model: ErrorModelKind::Normal,
            w_total: 1000.0,
            progress: false,
            trace_mode: TraceMode::Off,
            queue_backend: QueueBackend::default(),
            speeds: SpeedModel::Declared,
            audit: false,
        }
    }

    /// The paper's full setting: complete Table 1 grid, 0.02 error step,
    /// 40 repetitions.
    pub fn full() -> Self {
        SweepConfig {
            grid: Table1Grid::full(),
            errors: crate::grid::error_values(0.02),
            reps: 40,
            progress: true,
            ..Self::quick()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Per-(platform point, error) aggregated result.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The platform point.
    pub point: GridPoint,
    /// The error magnitude.
    pub error: f64,
    /// Mean makespan per competitor (indexed like the competitor slice),
    /// averaged over the repetitions.
    pub means: Vec<f64>,
    /// Mean master-link utilization per competitor, present when the sweep
    /// ran with [`TraceMode::MetricsOnly`] or [`TraceMode::Full`].
    pub link_util: Option<Vec<f64>>,
    /// Mean robustness ratio per competitor (realized makespan over the
    /// clairvoyant reference, ≥ 1), present when the sweep ran with an
    /// active [`SweepConfig::speeds`] model.
    pub robustness: Option<Vec<f64>>,
    /// Invariant findings across every run of the cell when
    /// [`SweepConfig::audit`] was on (0 = audited and clean).
    pub audit_findings: usize,
}

/// Result of a sweep: one [`Cell`] per (point, error), in deterministic
/// (point-major) order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Competitor labels, in column order.
    pub labels: Vec<String>,
    /// All cells.
    pub cells: Vec<Cell>,
}

impl SweepResult {
    /// Index of a competitor column by label.
    pub fn column(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }
}

/// Run a sweep. Deterministic for a given configuration regardless of the
/// thread count.
///
/// # Panics
///
/// Panics if a simulation fails — every failure mode of the engine
/// indicates a scheduler bug, and the panic message carries the offending
/// cell's parameters.
pub fn run_sweep(config: &SweepConfig, competitors: &[Competitor]) -> SweepResult {
    assert!(config.reps > 0, "need at least one repetition");
    assert!(!competitors.is_empty(), "need at least one competitor");
    let points = config.grid.points();
    let mut work: Vec<(usize, GridPoint, f64)> =
        Vec::with_capacity(points.len() * config.errors.len());
    for point in points {
        for &error in &config.errors {
            let idx = work.len();
            work.push((idx, point, error));
        }
    }

    let slots: Vec<Mutex<Option<Cell>>> = (0..work.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let threads = config.effective_threads().min(work.len()).max(1);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let (idx, point, error) = work[i];
                let cell = compute_cell(config, competitors, idx, point, error);
                *slots[idx].lock().expect("sweep worker panicked") = Some(cell);
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if config.progress && (finished.is_multiple_of(500) || finished == work.len()) {
                    eprintln!("sweep: {finished}/{} cells", work.len());
                }
            });
        }
    });

    SweepResult {
        labels: competitors.iter().map(Competitor::label).collect(),
        cells: slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep worker panicked")
                    .expect("all cells computed")
            })
            .collect(),
    }
}

fn compute_cell(
    config: &SweepConfig,
    competitors: &[Competitor],
    cell_index: usize,
    point: GridPoint,
    error: f64,
) -> Cell {
    let platform = dls_sim::HomogeneousParams::table1(
        point.n,
        point.ratio,
        point.comp_latency,
        point.net_latency,
    )
    .build()
    .expect("grid parameters are valid");
    let num_workers = platform.num_workers();
    let scenario = Scenario {
        platform,
        w_total: config.w_total,
        error_model: config.model.model(error),
        cost_profile: None,
        temporal_noise: None,
    };
    // One engine per cell: the runner resets it between repetitions so the
    // event heap, ledger and queues are allocated once, not reps × comps
    // times.
    let sim_config = SimConfig {
        trace_mode: config.trace_mode,
        queue_backend: config.queue_backend,
        speeds: config.speeds,
        audit: config.audit,
        ..SimConfig::default()
    };
    let mut runner = scenario.runner(sim_config.clone());
    // One spec per competitor, planned once per cell; repetitions stamp
    // out fresh schedulers by cloning the attached prototype instead of
    // re-running the (expensive) solvers.
    let mut specs: Vec<_> = competitors
        .iter()
        .map(|competitor| {
            let kind = competitor.kind_for(error);
            let prototype = runner.prototype(&kind).unwrap_or_else(|e| {
                panic!(
                    "planner failed: {e} (competitor {}, N={}, r={}, cLat={}, nLat={}, error={error})",
                    competitor.label(),
                    point.n,
                    point.ratio,
                    point.comp_latency,
                    point.net_latency,
                )
            });
            RunSpec::new(kind)
                .config(sim_config.clone())
                .with_prototype(prototype)
        })
        .collect();
    let seeds = SeedDeriver::new(config.root_seed).child(cell_index as u64);

    let speeds_active = config.speeds.is_active();
    let mut means = vec![0.0; competitors.len()];
    let mut link_util = vec![0.0; competitors.len()];
    let mut robustness = vec![0.0; competitors.len()];
    let mut audit_findings = 0usize;
    for rep in 0..config.reps {
        let rep_seeds = seeds.child(rep);
        for (c, competitor) in competitors.iter().enumerate() {
            // Independent error realizations per algorithm, matching the
            // paper's methodology (each experiment is a fresh run).
            let seed = rep_seeds.child(c as u64).seed();
            specs[c].seed = seed;
            let result = runner.execute(&specs[c]).unwrap_or_else(|e| {
                panic!(
                    "simulation failed: {e} (competitor {}, N={}, r={}, cLat={}, nLat={}, error={error}, rep={rep})",
                    competitor.label(),
                    point.n,
                    point.ratio,
                    point.comp_latency,
                    point.net_latency,
                )
            });
            means[c] += result.makespan;
            if let Some(findings) = &result.audit {
                audit_findings += findings.len();
            }
            if speeds_active {
                let report = scenario
                    .robustness(&specs[c], seed, result.makespan)
                    .expect("speed model is active");
                robustness[c] += report.ratio;
            }
            match config.trace_mode {
                TraceMode::Off => {}
                TraceMode::MetricsOnly => {
                    if let Some(metrics) = &result.metrics {
                        link_util[c] += metrics.link_utilization(result.makespan);
                    }
                }
                TraceMode::Full => {
                    // A fully traced sweep is the self-checking
                    // configuration: every run's trace is validated against
                    // the engine's protocol invariants (serial sends, FIFO
                    // queues, conservation) and the derived trace metrics
                    // feed the cell aggregates.
                    if let Some(trace) = &result.trace {
                        let violations = trace.validate(num_workers);
                        assert!(
                            violations.is_empty(),
                            "trace violations (competitor {}, N={}, error={error}, rep={rep}): {violations:?}",
                            competitor.label(),
                            point.n,
                        );
                        let tm = TraceMetrics::from_trace(trace, num_workers);
                        link_util[c] += tm.link_utilization;
                    }
                }
            }
        }
    }
    let denom = config.reps as f64;
    for m in &mut means {
        *m /= denom;
    }
    let link_util = config.trace_mode.records_summary().then(|| {
        for u in &mut link_util {
            *u /= denom;
        }
        link_util
    });
    let robustness = speeds_active.then(|| {
        for r in &mut robustness {
            *r /= denom;
        }
        robustness
    });
    Cell {
        point,
        error,
        means,
        link_util,
        robustness,
        audit_findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            grid: Table1Grid {
                n_values: vec![10],
                ratio_values: vec![1.5],
                clat_values: vec![0.2],
                nlat_values: vec![0.1, 0.4],
            },
            errors: vec![0.0, 0.3],
            reps: 3,
            root_seed: 1,
            threads: 2,
            model: ErrorModelKind::Normal,
            w_total: 1000.0,
            progress: false,
            trace_mode: TraceMode::Off,
            queue_backend: QueueBackend::default(),
            speeds: SpeedModel::Declared,
            audit: false,
        }
    }

    #[test]
    fn sweep_shape_and_labels() {
        let comps = vec![
            Competitor::RumrKnown,
            Competitor::Umr,
            Competitor::Factoring,
        ];
        let r = run_sweep(&tiny_config(), &comps);
        assert_eq!(r.labels, vec!["RUMR", "UMR", "Factoring"]);
        assert_eq!(r.cells.len(), 4); // 2 points × 2 errors
        for cell in &r.cells {
            assert_eq!(cell.means.len(), 3);
            for &m in &cell.means {
                assert!(m > 0.0 && m.is_finite());
            }
        }
        assert_eq!(r.column("UMR"), Some(1));
        assert_eq!(r.column("nope"), None);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let comps = vec![Competitor::RumrKnown, Competitor::Umr];
        let mut one = tiny_config();
        one.threads = 1;
        let mut four = tiny_config();
        four.threads = 4;
        let a = run_sweep(&one, &comps);
        let b = run_sweep(&four, &comps);
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.means, y.means, "thread count changed results");
        }
    }

    #[test]
    fn zero_error_cells_have_rumr_equal_umr() {
        let comps = vec![Competitor::RumrKnown, Competitor::Umr];
        let r = run_sweep(&tiny_config(), &comps);
        for cell in r.cells.iter().filter(|c| c.error == 0.0) {
            assert!(
                (cell.means[0] - cell.means[1]).abs() < 1e-9,
                "RUMR(0) must equal UMR: {:?}",
                cell
            );
        }
    }

    #[test]
    fn trace_modes_agree_on_means_and_populate_link_util() {
        let comps = vec![Competitor::RumrKnown, Competitor::Factoring];
        let off = run_sweep(&tiny_config(), &comps);
        for mode in [TraceMode::MetricsOnly, TraceMode::Full] {
            let mut cfg = tiny_config();
            cfg.trace_mode = mode;
            let r = run_sweep(&cfg, &comps);
            for (a, b) in off.cells.iter().zip(&r.cells) {
                assert_eq!(a.means, b.means, "{mode:?} changed makespans");
                assert!(a.link_util.is_none());
                let util = b.link_util.as_ref().expect("metrics recorded");
                for &u in util {
                    assert!(u > 0.0 && u <= 1.0 + 1e-9, "bad utilization {u}");
                }
            }
        }
    }

    #[test]
    fn queue_backends_agree_bit_for_bit() {
        let comps = vec![Competitor::RumrKnown, Competitor::Factoring];
        let calendar = run_sweep(&tiny_config(), &comps);
        let mut cfg = tiny_config();
        cfg.queue_backend = QueueBackend::Heap;
        let heap = run_sweep(&cfg, &comps);
        for (a, b) in calendar.cells.iter().zip(&heap.cells) {
            assert_eq!(a.means, b.means, "queue backend changed results");
        }
    }

    #[test]
    fn declared_speeds_leave_results_bit_identical() {
        let comps = vec![Competitor::RumrKnown, Competitor::Factoring];
        let base = run_sweep(&tiny_config(), &comps);
        let mut cfg = tiny_config();
        cfg.speeds = SpeedModel::Declared; // explicit identity
        let gated = run_sweep(&cfg, &comps);
        for (a, b) in base.cells.iter().zip(&gated.cells) {
            assert_eq!(a.means, b.means);
            assert!(b.robustness.is_none(), "no revelation, no ratio");
        }
    }

    #[test]
    fn active_speeds_populate_robustness_at_least_one() {
        let comps = vec![
            Competitor::RumrKnown,
            Competitor::Factoring,
            Competitor::OneRound,
        ];
        let mut cfg = tiny_config();
        cfg.speeds = SpeedModel::Adversarial {
            fraction: 0.25,
            slowdown: 2.0,
        };
        cfg.audit = true;
        let r = run_sweep(&cfg, &comps);
        for cell in &r.cells {
            assert_eq!(cell.audit_findings, 0, "audited runs must be clean");
            let ratios = cell.robustness.as_ref().expect("revelation active");
            assert_eq!(ratios.len(), 3);
            for &ratio in ratios {
                assert!(
                    ratio >= 1.0 - 1e-9 && ratio.is_finite(),
                    "bad robustness ratio {ratio} in {cell:?}"
                );
            }
        }
    }

    #[test]
    fn paper_competitor_set() {
        let comps = paper_competitors();
        assert_eq!(comps.len(), 7);
        assert_eq!(comps[0].label(), "RUMR");
        assert_eq!(comps[6].label(), "Factoring");
    }

    #[test]
    fn model_kind_mapping() {
        assert_eq!(ErrorModelKind::Normal.model(0.0), ErrorModel::None);
        assert_eq!(
            ErrorModelKind::Normal.model(0.2),
            ErrorModel::TruncatedNormal { error: 0.2 }
        );
        assert_eq!(
            ErrorModelKind::Uniform.model(0.2),
            ErrorModel::Uniform { error: 0.2 }
        );
        assert_eq!(
            ErrorModelKind::Inverse.model(0.2),
            ErrorModel::TruncatedNormalInverse { error: 0.2 }
        );
    }

    #[test]
    fn competitor_kind_mapping() {
        assert_eq!(Competitor::Umr.kind_for(0.3), SchedulerKind::Umr);
        assert_eq!(
            Competitor::Mi(2).kind_for(0.3),
            SchedulerKind::Mi { installments: 2 }
        );
        assert_eq!(
            Competitor::RumrKnown.kind_for(0.3),
            SchedulerKind::rumr_known_error(0.3)
        );
        assert_eq!(Competitor::RumrFixed(0.8).label(), "RUMR_80");
    }
}
