//! Conformance audit: differential + analytic checking of the pinned suite.
//!
//! [`run_audit`] drives every pinned benchmark case
//! ([`pinned_cases`](crate::pinned_cases), 16 of them) through the full
//! configuration cross-product
//!
//! > {heap, calendar} event queue × {Off, MetricsOnly, Full} trace mode ×
//! > {fresh build, prototype clone}
//!
//! with the engine's streaming [`InvariantChecker`](rumr::sim::InvariantChecker)
//! enabled, and checks three independent layers:
//!
//! 1. **Differential**: every configuration must produce *bit-identical*
//!    results to the reference configuration (heap / Off / fresh) at equal
//!    seed — the first divergent metric is reported.
//! 2. **Invariants**: zero streaming invariant findings in every run; under
//!    `Full` the post-hoc [`Trace::validate`](rumr::sim::Trace::validate)
//!    must agree.
//! 3. **Analytic oracles**: each planner's closed-form prediction
//!    ([`SchedulerKind::oracle`]) must account for the full workload, and —
//!    on an error-free twin of the scenario — the simulated makespan must
//!    sit within the model's stated tolerance (exactly for UMR/one-round,
//!    never below the bound for MI), with UMR additionally pinned
//!    round-by-round against its dispatch/finish timeline.
//!
//! The `audit` binary wraps this as a CLI and exits non-zero on any
//! finding; CI runs it in quick mode on both backends.

use std::fmt;

use rumr::sim::TraceEvent;
use rumr::{
    ErrorModel, FaultModel, Prediction, QueueBackend, RecoveryConfig, RunSpec, SchedulerKind,
    SimConfig, SimResult, TraceMode,
};

use crate::json::json_escape;
use crate::snapshot::{pinned_cases, pinned_faults, CaseSpec, QueueSelection};

/// Repetitions per configuration in standard mode.
pub const DEFAULT_REPS: u64 = 5;
/// Repetitions per configuration in `--quick` mode (CI smoke).
pub const QUICK_REPS: u64 = 2;

/// What [`run_audit`] runs.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Seeds per (case, configuration) pair.
    pub reps: u64,
    /// Event-queue backends to cross-check.
    pub queue: QueueSelection,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            reps: DEFAULT_REPS,
            queue: QueueSelection::Both,
        }
    }
}

impl AuditOptions {
    /// The CI smoke configuration: [`QUICK_REPS`] seeds, both backends.
    pub fn quick() -> Self {
        AuditOptions {
            reps: QUICK_REPS,
            queue: QueueSelection::Both,
        }
    }
}

/// The audit layer a finding came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A configuration produced different results than the reference
    /// configuration at the same seed.
    Divergence,
    /// The streaming invariant checker flagged the run.
    Invariant,
    /// The post-hoc trace validator disagreed with a `Full`-mode run.
    TraceViolation,
    /// The planner's oracle does not account for the workload it was given.
    OracleAccounting,
    /// The error-free simulated makespan fell outside the model's stated
    /// tolerance.
    OracleResidual,
    /// An error-free run did not land on the model's per-round timeline.
    OracleTimeline,
    /// A run that should succeed returned an error.
    RunFailure,
}

impl FindingKind {
    /// Stable lowercase tag used in the JSON report.
    pub fn tag(&self) -> &'static str {
        match self {
            FindingKind::Divergence => "divergence",
            FindingKind::Invariant => "invariant",
            FindingKind::TraceViolation => "trace_violation",
            FindingKind::OracleAccounting => "oracle_accounting",
            FindingKind::OracleResidual => "oracle_residual",
            FindingKind::OracleTimeline => "oracle_timeline",
            FindingKind::RunFailure => "run_failure",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One discrepancy surfaced by the audit.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// Pinned case name (`<platform>/<scheduler>/<fault regime>`).
    pub case: String,
    /// Configuration label (`<queue>/<trace mode>/<fresh|proto>`, or
    /// `oracle` for analytic findings).
    pub config: String,
    /// Seed of the offending run (0 for per-case findings).
    pub seed: u64,
    /// Audit layer that fired.
    pub kind: FindingKind,
    /// What exactly diverged, with values.
    pub detail: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} @ {} seed {}: {}",
            self.kind, self.case, self.config, self.seed, self.detail
        )
    }
}

/// Outcome of a full audit sweep.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Pinned cases audited.
    pub cases: usize,
    /// Configurations per case (queue × trace mode × fresh/proto).
    pub configs_per_case: usize,
    /// Seeds per configuration.
    pub reps: u64,
    /// Total simulation runs executed.
    pub runs: u64,
    /// Every discrepancy found (empty = conforming).
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// True when the audit surfaced nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serialize as a small JSON document (no serde; mirrors the snapshot
    /// module's hand-rolled emission).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cases\": {},\n", self.cases));
        out.push_str(&format!(
            "  \"configs_per_case\": {},\n",
            self.configs_per_case
        ));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str(&format!("  \"runs\": {},\n", self.runs));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"case\": \"{}\", \"config\": \"{}\", \"seed\": {}, \"detail\": \"{}\"}}{}\n",
                f.kind.tag(),
                json_escape(&f.case),
                json_escape(&f.config),
                f.seed,
                json_escape(&f.detail),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The per-run metrics whose bit patterns must be identical across every
/// configuration. `Vec`-free so a reference sweep stays cheap to store.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Signature {
    makespan: u64,
    dispatched: u64,
    completed: u64,
    lost: u64,
    outstanding: u64,
    num_chunks: usize,
    events: u64,
}

impl Signature {
    fn of(r: &SimResult) -> Self {
        Signature {
            makespan: r.makespan.to_bits(),
            dispatched: r.dispatched_work.to_bits(),
            completed: r.completed_work().to_bits(),
            lost: r.lost_work.to_bits(),
            outstanding: r.outstanding_work.to_bits(),
            num_chunks: r.num_chunks,
            events: r.events,
        }
    }

    /// First differing metric against `other`, as `(name, self, other)`
    /// rendered for humans.
    fn first_divergence(&self, other: &Signature) -> Option<String> {
        let f = |bits: u64| f64::from_bits(bits);
        if self.makespan != other.makespan {
            return Some(format!(
                "makespan {} vs reference {}",
                f(self.makespan),
                f(other.makespan)
            ));
        }
        if self.dispatched != other.dispatched {
            return Some(format!(
                "dispatched_work {} vs reference {}",
                f(self.dispatched),
                f(other.dispatched)
            ));
        }
        if self.completed != other.completed {
            return Some(format!(
                "completed_work {} vs reference {}",
                f(self.completed),
                f(other.completed)
            ));
        }
        if self.lost != other.lost {
            return Some(format!(
                "lost_work {} vs reference {}",
                f(self.lost),
                f(other.lost)
            ));
        }
        if self.outstanding != other.outstanding {
            return Some(format!(
                "outstanding_work {} vs reference {}",
                f(self.outstanding),
                f(other.outstanding)
            ));
        }
        if self.num_chunks != other.num_chunks {
            return Some(format!(
                "num_chunks {} vs reference {}",
                self.num_chunks, other.num_chunks
            ));
        }
        if self.events != other.events {
            return Some(format!(
                "events {} vs reference {}",
                self.events, other.events
            ));
        }
        None
    }
}

fn config_for(spec: &CaseSpec, backend: QueueBackend, mode: TraceMode) -> SimConfig {
    SimConfig {
        trace_mode: mode,
        faults: if spec.faulty {
            pinned_faults()
        } else {
            FaultModel::None
        },
        queue_backend: backend,
        audit: true,
        ..SimConfig::default()
    }
}

/// Run one case under one configuration for one seed, fresh or via a
/// prototype clone. Returns `Err(detail)` on a run failure.
fn run_one(
    spec: &CaseSpec,
    backend: QueueBackend,
    mode: TraceMode,
    proto: bool,
    seed: u64,
) -> Result<SimResult, String> {
    let config = config_for(spec, backend, mode);
    let mut runner = spec.scenario.runner(config.clone());
    let mut run = RunSpec::new(spec.kind).seed(seed).config(config);
    if spec.faulty {
        run = run.recovering(RecoveryConfig::default());
    }
    if proto {
        let prototype = runner.prototype(&spec.kind).map_err(|e| e.to_string())?;
        run = run.with_prototype(prototype);
    }
    runner.execute(&run).map_err(|e| e.to_string())
}

fn mode_label(mode: TraceMode) -> &'static str {
    match mode {
        TraceMode::Off => "off",
        TraceMode::MetricsOnly => "metrics",
        TraceMode::Full => "full",
    }
}

fn backend_label(backend: QueueBackend) -> &'static str {
    match backend {
        QueueBackend::Heap => "heap",
        QueueBackend::Calendar => "calendar",
    }
}

/// Audit one case: reference sweep, differential cross-product, invariant
/// findings, trace cross-check. Appends findings; returns runs executed.
fn audit_case(spec: &CaseSpec, options: &AuditOptions, findings: &mut Vec<AuditFinding>) -> u64 {
    let mut runs = 0u64;
    // Reference: heap / Off / fresh.
    let mut reference = Vec::with_capacity(options.reps as usize);
    for seed in 0..options.reps {
        match run_one(spec, QueueBackend::Heap, TraceMode::Off, false, seed) {
            Ok(r) => {
                runs += 1;
                collect_run_findings(spec, "heap/off/fresh", seed, &r, findings);
                reference.push(Some(Signature::of(&r)));
            }
            Err(detail) => {
                findings.push(AuditFinding {
                    case: spec.name.clone(),
                    config: "heap/off/fresh".into(),
                    seed,
                    kind: FindingKind::RunFailure,
                    detail,
                });
                reference.push(None);
            }
        }
    }

    for &backend in options.queue.backends() {
        for mode in [TraceMode::Off, TraceMode::MetricsOnly, TraceMode::Full] {
            for proto in [false, true] {
                if backend == QueueBackend::Heap && mode == TraceMode::Off && !proto {
                    continue; // the reference itself
                }
                let config = format!(
                    "{}/{}/{}",
                    backend_label(backend),
                    mode_label(mode),
                    if proto { "proto" } else { "fresh" }
                );
                for seed in 0..options.reps {
                    let r = match run_one(spec, backend, mode, proto, seed) {
                        Ok(r) => r,
                        Err(detail) => {
                            findings.push(AuditFinding {
                                case: spec.name.clone(),
                                config: config.clone(),
                                seed,
                                kind: FindingKind::RunFailure,
                                detail,
                            });
                            continue;
                        }
                    };
                    runs += 1;
                    collect_run_findings(spec, &config, seed, &r, findings);
                    if let Some(Some(reference)) = reference.get(seed as usize) {
                        if let Some(detail) = Signature::of(&r).first_divergence(reference) {
                            findings.push(AuditFinding {
                                case: spec.name.clone(),
                                config: config.clone(),
                                seed,
                                kind: FindingKind::Divergence,
                                detail,
                            });
                        }
                    }
                }
            }
        }
    }
    runs
}

/// Per-run checks shared by every configuration: streaming invariant
/// findings, and (under `Full`) agreement with the post-hoc validator.
fn collect_run_findings(
    spec: &CaseSpec,
    config: &str,
    seed: u64,
    r: &SimResult,
    findings: &mut Vec<AuditFinding>,
) {
    match &r.audit {
        Some(list) => {
            for f in list {
                findings.push(AuditFinding {
                    case: spec.name.clone(),
                    config: config.to_string(),
                    seed,
                    kind: FindingKind::Invariant,
                    detail: f.to_string(),
                });
            }
        }
        None => findings.push(AuditFinding {
            case: spec.name.clone(),
            config: config.to_string(),
            seed,
            kind: FindingKind::Invariant,
            detail: "audit was requested but the engine returned no findings list".into(),
        }),
    }
    if let Some(trace) = &r.trace {
        for v in trace.validate(spec.scenario.platform.num_workers()) {
            findings.push(AuditFinding {
                case: spec.name.clone(),
                config: config.to_string(),
                seed,
                kind: FindingKind::TraceViolation,
                detail: v.to_string(),
            });
        }
    }
}

/// Analytic-oracle checks for one case: work accounting always; makespan
/// residual and (for UMR) the round timeline on an error-free twin.
/// Fault-free cases only — a faulty run's makespan is not the model's.
fn audit_oracle(spec: &CaseSpec, findings: &mut Vec<AuditFinding>) -> u64 {
    let oracle = match spec
        .kind
        .oracle(&spec.scenario.platform, spec.scenario.w_total)
    {
        Ok(Some(o)) => o,
        Ok(None) => return 0,
        Err(e) => {
            findings.push(AuditFinding {
                case: spec.name.clone(),
                config: "oracle".into(),
                seed: 0,
                kind: FindingKind::RunFailure,
                detail: format!("oracle construction failed: {e}"),
            });
            return 0;
        }
    };

    let w = spec.scenario.w_total;
    if (oracle.planned_work() - w).abs() > 1e-6 * w.abs().max(1.0) {
        findings.push(AuditFinding {
            case: spec.name.clone(),
            config: "oracle".into(),
            seed: 0,
            kind: FindingKind::OracleAccounting,
            detail: format!(
                "{} plan accounts for {} of {} workload units",
                oracle.name(),
                oracle.planned_work(),
                w
            ),
        });
    }
    if spec.faulty {
        return 0;
    }

    // Error-free twin: same platform/workload, no prediction error, no
    // faults — the regime the closed forms describe.
    let mut twin = spec.scenario.clone();
    twin.error_model = ErrorModel::None;
    let config = SimConfig {
        trace_mode: TraceMode::Full,
        audit: true,
        ..SimConfig::default()
    };
    let run = RunSpec::new(spec.kind).config(config.clone());
    let result = match twin.runner(config).execute(&run) {
        Ok(r) => r,
        Err(e) => {
            findings.push(AuditFinding {
                case: spec.name.clone(),
                config: "oracle".into(),
                seed: 0,
                kind: FindingKind::RunFailure,
                detail: format!("error-free twin failed: {e}"),
            });
            return 0;
        }
    };

    let prediction = oracle.makespan();
    if !prediction.within(result.makespan) {
        let (residual, tol) = (
            prediction.residual(result.makespan).unwrap_or(f64::NAN),
            prediction.tolerance().unwrap_or(f64::NAN),
        );
        findings.push(AuditFinding {
            case: spec.name.clone(),
            config: "oracle".into(),
            seed: 0,
            kind: FindingKind::OracleResidual,
            detail: format!(
                "{} predicted {:?}, simulated {} (residual {residual:e} > tol {tol:e})",
                oracle.name(),
                prediction,
                result.makespan
            ),
        });
    }

    // UMR's timeline is pinned per round: worker 0's j-th compute end is
    // first_finish[j], the last worker's is last_finish[j]. (Other oracles
    // either publish no timeline here — MI withdraws it when latencies are
    // non-zero — or their timeline semantics differ.)
    if matches!(spec.kind, SchedulerKind::Umr) {
        if let (Some(timeline), Some(trace)) = (oracle.round_timeline(), &result.trace) {
            let n = spec.scenario.platform.num_workers();
            let ends = |worker: usize| -> Vec<f64> {
                trace
                    .events()
                    .iter()
                    .filter_map(|e| match *e {
                        TraceEvent::ComputeEnd {
                            worker: w, time, ..
                        } if w == worker => Some(time),
                        _ => None,
                    })
                    .collect()
            };
            let first = ends(0);
            let last = ends(n - 1);
            let mut check = |label: &str, observed: &[f64], predicted: &dyn Fn(usize) -> f64| {
                if observed.len() != timeline.len() {
                    findings.push(AuditFinding {
                        case: spec.name.clone(),
                        config: "oracle".into(),
                        seed: 0,
                        kind: FindingKind::OracleTimeline,
                        detail: format!(
                            "{label}: {} compute ends vs {} predicted rounds",
                            observed.len(),
                            timeline.len()
                        ),
                    });
                    return;
                }
                for (j, &t) in observed.iter().enumerate() {
                    let p = predicted(j);
                    if (t - p).abs() > 1e-6 * p.abs().max(1.0) {
                        findings.push(AuditFinding {
                            case: spec.name.clone(),
                            config: "oracle".into(),
                            seed: 0,
                            kind: FindingKind::OracleTimeline,
                            detail: format!("{label} round {j}: finished {t} vs predicted {p}"),
                        });
                    }
                }
            };
            check("first worker", &first, &|j| timeline[j].first_finish);
            check("last worker", &last, &|j| timeline[j].last_finish);
        }
    }

    // Internal consistency: an Exact prediction with a timeline must end
    // the timeline exactly at the predicted makespan.
    if let (Some(timeline), Prediction::Exact { makespan, .. }) =
        (oracle.round_timeline(), oracle.makespan())
    {
        if let Some(last) = timeline.last() {
            if (last.last_finish - makespan).abs() > 1e-9 * makespan.abs().max(1.0) {
                findings.push(AuditFinding {
                    case: spec.name.clone(),
                    config: "oracle".into(),
                    seed: 0,
                    kind: FindingKind::OracleTimeline,
                    detail: format!(
                        "timeline ends at {} but the model predicts {makespan}",
                        last.last_finish
                    ),
                });
            }
        }
    }
    1
}

/// Run the full conformance audit over the pinned suite.
pub fn run_audit(options: &AuditOptions) -> AuditReport {
    let cases = pinned_cases();
    let mut findings = Vec::new();
    let mut runs = 0u64;
    for spec in &cases {
        runs += audit_case(spec, options, &mut findings);
        runs += audit_oracle(spec, &mut findings);
    }
    AuditReport {
        cases: cases.len(),
        configs_per_case: options.queue.backends().len() * 3 * 2,
        reps: options.reps,
        runs,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_divergence_reports_first_metric() {
        let a = Signature {
            makespan: 1.0f64.to_bits(),
            dispatched: 2.0f64.to_bits(),
            completed: 2.0f64.to_bits(),
            lost: 0,
            outstanding: 0,
            num_chunks: 3,
            events: 10,
        };
        assert!(a.first_divergence(&a).is_none());
        let mut b = a;
        b.events = 11;
        assert!(a.first_divergence(&b).unwrap().contains("events"));
        let mut c = a;
        c.makespan = 1.5f64.to_bits();
        c.events = 11;
        // Makespan is checked first.
        assert!(a.first_divergence(&c).unwrap().contains("makespan"));
    }

    #[test]
    fn report_json_roundtrips_the_shape() {
        let report = AuditReport {
            cases: 16,
            configs_per_case: 12,
            reps: 2,
            runs: 100,
            findings: vec![AuditFinding {
                case: "homogeneous/umr/fault-free".into(),
                config: "heap/off/fresh".into(),
                seed: 1,
                kind: FindingKind::Divergence,
                detail: "makespan \"x\" vs y".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"kind\": \"divergence\""));
        assert!(json.contains("makespan \\\"x\\\" vs y"));
        let clean = AuditReport {
            findings: Vec::new(),
            ..report
        };
        assert!(clean.to_json().contains("\"clean\": true"));
    }

    #[test]
    fn single_case_audit_is_clean() {
        // One fault-free pinned case through the full machinery.
        let cases = pinned_cases();
        let spec = cases
            .iter()
            .find(|c| c.name == "homogeneous/umr/fault-free")
            .unwrap();
        let mut findings = Vec::new();
        let runs = audit_case(
            spec,
            &AuditOptions {
                reps: 1,
                queue: QueueSelection::Heap,
            },
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(runs, 1 + 5); // reference + (heap × 3 modes × 2 builds − reference)
        audit_oracle(spec, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn faulty_case_audit_is_clean() {
        let cases = pinned_cases();
        let spec = cases
            .iter()
            .find(|c| c.name == "homogeneous/factoring/faulty")
            .unwrap();
        let mut findings = Vec::new();
        audit_case(
            spec,
            &AuditOptions {
                reps: 1,
                queue: QueueSelection::Heap,
            },
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn finding_display_is_informative() {
        let f = AuditFinding {
            case: "c".into(),
            config: "heap/off/fresh".into(),
            seed: 3,
            kind: FindingKind::OracleResidual,
            detail: "d".into(),
        };
        let s = format!("{f}");
        assert!(s.contains("oracle_residual") && s.contains("seed 3"), "{s}");
    }
}
