//! Minimal hand-rolled JSON: emission helpers, a recursive-descent parser
//! and a canonical (sorted-key, compact) form.
//!
//! Grown out of the benchmark-snapshot validator and shared by everything
//! in the workspace that speaks JSON without a serde dependency: the
//! snapshot schema check, the audit report emitter and the `dls-serve`
//! request/response codec. The canonical form is what the service hashes
//! for its plan cache and what the round-trip tests pin.

/// A parsed JSON value. Object fields preserve their source order;
/// [`Json::canonical`] sorts them on output so two objects with the same
/// fields in different order canonicalize identically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as (key, value) pairs in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` on missing key or non-object.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// True when every number in the document (at any nesting depth) is
    /// finite. JSON has no NaN/infinity literals, but an overflowing
    /// token like `1e999` parses to f64 infinity — callers that feed
    /// parsed numbers into simulation configs use this to reject such
    /// documents wholesale.
    pub fn all_finite(&self) -> bool {
        match self {
            Json::Null | Json::Bool(_) | Json::Str(_) => true,
            Json::Num(x) => x.is_finite(),
            Json::Arr(items) => items.iter().all(Json::all_finite),
            Json::Obj(fields) => fields.iter().all(|(_, v)| v.all_finite()),
        }
    }

    /// Canonical serialization: compact (no whitespace), object keys
    /// sorted lexicographically at every level, numbers in Rust's shortest
    /// round-trip `{}` form. Two semantically equal documents — same
    /// fields, any order, any formatting — canonicalize to the same bytes,
    /// which is what makes this usable as a cache key.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&json_num(*x)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_canonical(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                let mut sorted: Vec<&(String, Json)> = fields.iter().collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                out.push('{');
                for (i, (k, v)) in sorted.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write_canonical(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape a string for embedding between JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a number as a JSON token.
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // NaN/inf are not JSON. Emit `null` so a schema validator — which
        // requires every schema number to be finite — rejects the document,
        // rather than a finite sentinel that would sail through unnoticed.
        "null".into()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let doc = r#" {"b": [1, 2.5, -3e2], "a": {"x": null, "y": true}, "s": "h\ni"} "#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("b").unwrap().arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().get("y").unwrap().bool(), Some(true));
        assert_eq!(v.get("s").unwrap().str(), Some("h\ni"));
    }

    #[test]
    fn canonical_sorts_keys_and_compacts() {
        let a = parse_json(r#"{"b": 1, "a": {"z": 2, "y": [1, 2]}}"#).unwrap();
        let b = parse_json(r#"{ "a": {"y": [1,2], "z": 2}, "b": 1 }"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), r#"{"a":{"y":[1,2],"z":2},"b":1}"#);
    }

    #[test]
    fn canonical_is_a_fixed_point() {
        let v = parse_json(r#"{"n": -0.125, "s": "q\"uote", "e": {}}"#).unwrap();
        let c = v.canonical();
        assert_eq!(parse_json(&c).unwrap().canonical(), c);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("{'a': 1}").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn all_finite_walks_every_depth() {
        assert!(parse_json(r#"{"a": [1, {"b": 2.5}], "c": null}"#)
            .unwrap()
            .all_finite());
        // 1e999 overflows to infinity during parsing.
        assert!(!parse_json(r#"{"a": [1, {"b": 1e999}]}"#)
            .unwrap()
            .all_finite());
        assert!(!parse_json("[[[-1e999]]]").unwrap().all_finite());
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(0.5), "0.5");
    }
}
