//! The experimental parameter grid of the paper's Table 1.
//!
//! ```text
//! N     = 10, 15, 20, …, 50
//! W     = 1000 units,   S = 1 unit/s
//! B     = r·N,  r = 1.2, 1.3, …, 2.0
//! cLat  = 0.0, 0.1, …, 1.0
//! nLat  = 0.0, 0.1, …, 1.0
//! error = 0.0 … 0.5 (we step by 0.02 for the full grid, matching the
//!         five reporting bands 0–0.08, 0.1–0.18, …, 0.4–0.48)
//! ```
//!
//! The full cross product is ~10⁴ platform points × 26 error values; with
//! 40 repetitions and 7 algorithms that is ~10⁸ simulations — feasible but
//! slow, so [`Table1Grid::quick`] provides a documented sub-grid for the
//! default harness runs and CI, and `--full` switches to the exact grid.

/// One platform configuration from the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Number of workers `N`.
    pub n: usize,
    /// Bandwidth ratio `r` (so `B = r·N`).
    pub ratio: f64,
    /// Computation latency `cLat` (s).
    pub comp_latency: f64,
    /// Communication latency `nLat` (s).
    pub net_latency: f64,
}

/// A cross-product grid over the Table 1 parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Grid {
    /// Worker counts.
    pub n_values: Vec<usize>,
    /// Bandwidth ratios.
    pub ratio_values: Vec<f64>,
    /// Computation latencies.
    pub clat_values: Vec<f64>,
    /// Communication latencies.
    pub nlat_values: Vec<f64>,
}

fn range_f64(start: f64, end: f64, step: f64) -> Vec<f64> {
    let count = ((end - start) / step).round() as usize;
    (0..=count).map(|i| start + i as f64 * step).collect()
}

impl Table1Grid {
    /// The paper's exact Table 1 grid (9 × 9 × 11 × 11 = 9,801 platform
    /// points).
    pub fn full() -> Self {
        Table1Grid {
            n_values: (10..=50).step_by(5).collect(),
            ratio_values: range_f64(1.2, 2.0, 0.1),
            clat_values: range_f64(0.0, 1.0, 0.1),
            nlat_values: range_f64(0.0, 1.0, 0.1),
        }
    }

    /// A documented sub-grid (144 platform points) that preserves the
    /// corners and interior of every dimension; used for default harness
    /// runs and CI.
    pub fn quick() -> Self {
        Table1Grid {
            n_values: vec![10, 30, 50],
            ratio_values: vec![1.2, 1.6, 2.0],
            clat_values: vec![0.0, 0.3, 0.6, 1.0],
            nlat_values: vec![0.0, 0.3, 0.6, 1.0],
        }
    }

    /// A single platform point (used for Fig. 5).
    pub fn single(point: GridPoint) -> Self {
        Table1Grid {
            n_values: vec![point.n],
            ratio_values: vec![point.ratio],
            clat_values: vec![point.comp_latency],
            nlat_values: vec![point.net_latency],
        }
    }

    /// Number of platform points in the grid.
    pub fn len(&self) -> usize {
        self.n_values.len()
            * self.ratio_values.len()
            * self.clat_values.len()
            * self.nlat_values.len()
    }

    /// True if the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize all platform points, in a deterministic order.
    pub fn points(&self) -> Vec<GridPoint> {
        let mut pts = Vec::with_capacity(self.len());
        for &n in &self.n_values {
            for &ratio in &self.ratio_values {
                for &comp_latency in &self.clat_values {
                    for &net_latency in &self.nlat_values {
                        pts.push(GridPoint {
                            n,
                            ratio,
                            comp_latency,
                            net_latency,
                        });
                    }
                }
            }
        }
        pts
    }
}

/// The paper's error sweep: `0.0..=0.5`.
pub fn error_values(step: f64) -> Vec<f64> {
    range_f64(0.0, 0.5, step)
}

/// The five error bands of Tables 2–3: `[0, 0.08]`, `[0.1, 0.18]`, …,
/// `[0.4, 0.48]`. Returns the band index for an error value, or `None` if
/// the value falls in a gap (e.g. 0.5).
pub fn error_band(error: f64) -> Option<usize> {
    const EPS: f64 = 1e-9;
    for band in 0..5 {
        let lo = band as f64 * 0.1;
        let hi = lo + 0.08;
        if error >= lo - EPS && error <= hi + EPS {
            return Some(band);
        }
    }
    None
}

/// Human-readable labels for the five error bands.
pub const BAND_LABELS: [&str; 5] = ["0-0.08", "0.1-0.18", "0.2-0.28", "0.3-0.38", "0.4-0.48"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_matches_table1() {
        let g = Table1Grid::full();
        assert_eq!(g.n_values, vec![10, 15, 20, 25, 30, 35, 40, 45, 50]);
        assert_eq!(g.ratio_values.len(), 9);
        assert_eq!(g.clat_values.len(), 11);
        assert_eq!(g.nlat_values.len(), 11);
        assert_eq!(g.len(), 9 * 9 * 11 * 11);
        assert_eq!(g.points().len(), g.len());
    }

    #[test]
    fn quick_grid_is_small() {
        let g = Table1Grid::quick();
        assert_eq!(g.len(), 3 * 3 * 4 * 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn single_grid() {
        let p = GridPoint {
            n: 20,
            ratio: 1.8,
            comp_latency: 0.3,
            net_latency: 0.9,
        };
        let g = Table1Grid::single(p);
        assert_eq!(g.len(), 1);
        assert_eq!(g.points(), vec![p]);
    }

    #[test]
    fn points_order_deterministic() {
        let g = Table1Grid::quick();
        assert_eq!(g.points(), g.points());
        // First point is all-minimums.
        let first = g.points()[0];
        assert_eq!(first.n, 10);
        assert!((first.ratio - 1.2).abs() < 1e-12);
    }

    #[test]
    fn error_sweep_values() {
        let e = error_values(0.02);
        assert_eq!(e.len(), 26);
        assert!((e[0] - 0.0).abs() < 1e-12);
        assert!((e[25] - 0.5).abs() < 1e-9);
        let e = error_values(0.05);
        assert_eq!(e.len(), 11);
    }

    #[test]
    fn band_assignment() {
        assert_eq!(error_band(0.0), Some(0));
        assert_eq!(error_band(0.08), Some(0));
        assert_eq!(error_band(0.09), None);
        assert_eq!(error_band(0.10), Some(1));
        assert_eq!(error_band(0.18), Some(1));
        assert_eq!(error_band(0.25), Some(2));
        assert_eq!(error_band(0.34), Some(3));
        assert_eq!(error_band(0.48), Some(4));
        assert_eq!(error_band(0.5), None);
    }

    #[test]
    fn range_is_inclusive_and_exact() {
        let v = range_f64(1.2, 2.0, 0.1);
        assert_eq!(v.len(), 9);
        assert!((v[8] - 2.0).abs() < 1e-12);
    }
}
