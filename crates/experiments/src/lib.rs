//! Paper-reproduction harness for "RUMR: Robust Scheduling for Divisible
//! Workloads" (HPDC 2003).
//!
//! One binary per table/figure regenerates the corresponding result:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table2` | Table 2 — % of experiments where RUMR wins, per error band |
//! | `table3` | Table 3 — % where RUMR wins by ≥ 10 % |
//! | `fig4a`  | Fig. 4(a) — relative makespan vs error, whole grid |
//! | `fig4b`  | Fig. 4(b) — subset `cLat < 0.3`, `nLat < 0.3` |
//! | `fig5`   | Fig. 5 — single high-`nLat` platform point |
//! | `fig6`   | Fig. 6 — fixed phase-1 fraction ablation |
//! | `fig7`   | Fig. 7 — in-order phase-1 ablation |
//! | `sweep`  | generic sweep with a CSV dump of every cell |
//!
//! Each binary defaults to a documented sub-grid that finishes in seconds;
//! pass `--full` for the paper's exact Table 1 grid with 40 repetitions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod chart;
pub mod cli;
pub mod figures;
pub mod grid;
pub mod json;
pub mod report;
pub mod snapshot;
pub mod sweep;
pub mod tables;

pub use audit::{run_audit, AuditFinding, AuditOptions, AuditReport, FindingKind};
pub use chart::ascii_chart;
pub use cli::{parse_args, parse_env, CliOptions};
pub use figures::{fig4a, fig4b, fig5_point, relative_series, RelativeSeries};
pub use grid::{error_band, error_values, GridPoint, Table1Grid, BAND_LABELS};
pub use report::{render_series, render_win_rate, series_csv, win_rate_csv, write_file};
pub use snapshot::{
    batched_speedup_from_json, pinned_cases, pinned_fastpath_cases, pinned_faults,
    pinned_speed_profiles, run_snapshot, validate_snapshot_json, CaseMode, CaseResult, CaseSpec,
    FastPathRow, QueueSelection, Snapshot, SnapshotConfig, SpeedRobustRow, SweepComparison,
    SCHEMA_VERSION,
};
pub use sweep::{
    paper_competitors, run_sweep, Cell, Competitor, ErrorModelKind, SweepConfig, SweepResult,
};
pub use tables::{overall_win_rate, win_rate_table, WinRateTable};
