//! ASCII line charts for relative-makespan series.
//!
//! The paper's Figures 4–7 are line plots of relative makespan vs. error;
//! [`ascii_chart`] renders the same picture directly in the terminal so the
//! figure binaries produce a *figure*, not just a table.

use crate::figures::RelativeSeries;

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render a series set as an ASCII line chart of roughly `width × height`
/// characters (plot area), with y-axis labels, an `y = 1` reference line,
/// and a legend. Returns a note instead of a chart for empty input.
pub fn ascii_chart(title: &str, series: &RelativeSeries, width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(5);
    let points: Vec<(usize, &[f64])> = series
        .values
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v.as_slice()))
        .collect();
    let finite: Vec<f64> = points
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if series.errors.is_empty() || finite.is_empty() {
        return format!("{title}\n(no data)\n");
    }

    // Y range: include the data and the y = 1 reference, with headroom.
    let mut lo = finite
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(1.0);
    let mut hi = finite
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1.0);
    let pad = ((hi - lo) * 0.05).max(1e-6);
    lo -= pad;
    hi += pad;

    let x_lo = series.errors[0];
    let x_hi = *series.errors.last().expect("non-empty");
    let x_span = (x_hi - x_lo).max(1e-12);

    let col_of = |e: f64| (((e - x_lo) / x_span) * (width - 1) as f64).round() as usize;
    let row_of = |v: f64| {
        let frac = (v - lo) / (hi - lo);
        ((1.0 - frac) * (height - 1) as f64).round() as usize
    };

    let mut grid = vec![vec![' '; width]; height];
    // Reference line at y = 1.
    let ref_row = row_of(1.0);
    for cell in &mut grid[ref_row] {
        *cell = '·';
    }
    // Plot each series (later series overwrite earlier at collisions).
    for (s, values) in &points {
        let glyph = GLYPHS[s % GLYPHS.len()];
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let c = col_of(series.errors[i]);
            let r = row_of(v);
            grid[r][c] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:6.2}")
        } else if r == height - 1 {
            format!("{lo:6.2}")
        } else if r == ref_row {
            String::from("  1.00")
        } else {
            String::from("      ")
        };
        out.push_str(&format!("{label} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "       {:<w$}\n",
        format!("error: {x_lo:.2} .. {x_hi:.2}"),
        w = width
    ));
    out.push_str("legend:");
    for (s, label) in series.labels.iter().enumerate() {
        out.push_str(&format!(" {}={label}", GLYPHS[s % GLYPHS.len()]));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RelativeSeries {
        RelativeSeries {
            errors: vec![0.0, 0.25, 0.5],
            labels: vec!["UMR".into(), "Factoring".into()],
            // Straddles 1.0 so the reference line is an interior row.
            values: vec![vec![0.95, 1.1, 1.2], vec![1.2, 1.05, 0.95]],
            cell_counts: vec![4, 4, 4],
        }
    }

    #[test]
    fn renders_glyphs_and_legend() {
        let c = ascii_chart("Fig test", &sample(), 40, 10);
        assert!(c.contains("Fig test"));
        assert!(c.contains('*'));
        assert!(c.contains('o'));
        assert!(c.contains("*=UMR"));
        assert!(c.contains("o=Factoring"));
        assert!(c.contains("1.00"));
        assert!(c.contains("error: 0.00 .. 0.50"));
    }

    #[test]
    fn reference_line_present() {
        let c = ascii_chart("t", &sample(), 40, 10);
        assert!(c.contains('·'), "y = 1 reference line missing");
    }

    #[test]
    fn empty_series_safe() {
        let empty = RelativeSeries {
            errors: vec![],
            labels: vec![],
            values: vec![],
            cell_counts: vec![],
        };
        assert!(ascii_chart("t", &empty, 40, 10).contains("no data"));

        let nan_only = RelativeSeries {
            errors: vec![0.0],
            labels: vec!["X".into()],
            values: vec![vec![f64::NAN]],
            cell_counts: vec![0],
        };
        assert!(ascii_chart("t", &nan_only, 40, 10).contains("no data"));
    }

    #[test]
    fn monotone_series_slopes_the_right_way() {
        // The '*' for the largest value must sit on a higher row (smaller
        // row index) than for the smallest.
        let c = ascii_chart("t", &sample(), 41, 11);
        let rows: Vec<&str> = c.lines().collect();
        let star_rows: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains('*'))
            .map(|(i, _)| i)
            .collect();
        assert!(star_rows.len() >= 2, "expected multiple star rows");
    }

    #[test]
    fn degenerate_single_point() {
        let one = RelativeSeries {
            errors: vec![0.3],
            labels: vec!["X".into()],
            values: vec![vec![1.5]],
            cell_counts: vec![1],
        };
        let c = ascii_chart("t", &one, 20, 8);
        assert!(c.contains('*'));
    }
}
