//! Tables 2 and 3: win-rate aggregation per error band.
//!
//! * **Table 2**: for each competitor, the percentage of experiments
//!   (cells) in which RUMR's mean makespan is strictly smaller.
//! * **Table 3**: the percentage in which RUMR wins *by at least 10 %*
//!   (competitor mean ≥ 1.1 × RUMR mean).
//!
//! Both are reported over the five error bands of the paper
//! (`0–0.08`, `0.1–0.18`, …, `0.4–0.48`).

use crate::grid::{error_band, BAND_LABELS};
use crate::sweep::SweepResult;

/// A win-rate table: one row per competitor (excluding the reference),
/// one column per error band.
#[derive(Debug, Clone, PartialEq)]
pub struct WinRateTable {
    /// Competitor labels (rows).
    pub rows: Vec<String>,
    /// Band labels (columns).
    pub bands: Vec<String>,
    /// `percentages[row][band]`: % of cells in the band where the reference
    /// beats the competitor (by the table's margin).
    pub percentages: Vec<Vec<f64>>,
    /// Number of cells that contributed to each band.
    pub band_counts: Vec<usize>,
}

/// Compute a win-rate table from a sweep whose first column is the
/// reference algorithm (RUMR).
///
/// `margin` is the required superiority factor: `1.0` reproduces Table 2
/// (any win), `1.1` reproduces Table 3 (wins by ≥ 10 %).
///
/// # Panics
///
/// Panics if the sweep has fewer than two competitors.
pub fn win_rate_table(sweep: &SweepResult, margin: f64) -> WinRateTable {
    assert!(
        sweep.labels.len() >= 2,
        "need a reference and at least one competitor"
    );
    let n_competitors = sweep.labels.len() - 1;
    let mut wins = vec![[0usize; 5]; n_competitors];
    let mut totals = [0usize; 5];

    for cell in &sweep.cells {
        let Some(band) = error_band(cell.error) else {
            continue;
        };
        totals[band] += 1;
        let reference = cell.means[0];
        for (row, &competitor_mean) in cell.means[1..].iter().enumerate() {
            if competitor_mean > reference * margin {
                wins[row][band] += 1;
            }
        }
    }

    let percentages = wins
        .iter()
        .map(|row| {
            (0..5)
                .map(|b| {
                    if totals[b] == 0 {
                        0.0
                    } else {
                        100.0 * row[b] as f64 / totals[b] as f64
                    }
                })
                .collect()
        })
        .collect();

    WinRateTable {
        rows: sweep.labels[1..].to_vec(),
        bands: BAND_LABELS.iter().map(|s| s.to_string()).collect(),
        percentages,
        band_counts: totals.to_vec(),
    }
}

/// Overall win percentage of the reference across *all* cells (the paper
/// quotes "RUMR outperforms competing algorithms in 79% of our
/// experiments").
pub fn overall_win_rate(sweep: &SweepResult) -> f64 {
    let mut wins = 0usize;
    let mut total = 0usize;
    for cell in &sweep.cells {
        let reference = cell.means[0];
        for &m in &cell.means[1..] {
            total += 1;
            if m > reference {
                wins += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * wins as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridPoint;
    use crate::sweep::Cell;

    fn point() -> GridPoint {
        GridPoint {
            n: 10,
            ratio: 1.5,
            comp_latency: 0.1,
            net_latency: 0.1,
        }
    }

    fn sweep_with(cells: Vec<Cell>) -> SweepResult {
        SweepResult {
            labels: vec!["RUMR".into(), "UMR".into(), "Factoring".into()],
            cells,
        }
    }

    #[test]
    fn counts_wins_per_band() {
        let cells = vec![
            // Band 0: RUMR beats UMR, loses to Factoring.
            Cell {
                point: point(),
                error: 0.02,
                means: vec![100.0, 110.0, 95.0],
                link_util: None,
                robustness: None,
                audit_findings: 0,
            },
            // Band 0 again: RUMR beats both.
            Cell {
                point: point(),
                error: 0.06,
                means: vec![100.0, 120.0, 130.0],
                link_util: None,
                robustness: None,
                audit_findings: 0,
            },
            // Band 4: ties are not wins.
            Cell {
                point: point(),
                error: 0.44,
                means: vec![100.0, 100.0, 101.0],
                link_util: None,
                robustness: None,
                audit_findings: 0,
            },
            // Gap value (0.5) is ignored.
            Cell {
                point: point(),
                error: 0.5,
                means: vec![100.0, 1000.0, 1000.0],
                link_util: None,
                robustness: None,
                audit_findings: 0,
            },
        ];
        let t = win_rate_table(&sweep_with(cells), 1.0);
        assert_eq!(t.rows, vec!["UMR", "Factoring"]);
        assert_eq!(t.band_counts, vec![2, 0, 0, 0, 1]);
        // UMR: band 0 → 2/2 wins; band 4 → tie, 0/1.
        assert!((t.percentages[0][0] - 100.0).abs() < 1e-9);
        assert!((t.percentages[0][4] - 0.0).abs() < 1e-9);
        // Factoring: band 0 → 1/2; band 4 → 1/1.
        assert!((t.percentages[1][0] - 50.0).abs() < 1e-9);
        assert!((t.percentages[1][4] - 100.0).abs() < 1e-9);
        // Empty bands report 0.
        assert!((t.percentages[0][2] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn margin_filters_narrow_wins() {
        let cells = vec![Cell {
            point: point(),
            error: 0.02,
            means: vec![100.0, 105.0, 115.0],
            link_util: None,
            robustness: None,
            audit_findings: 0,
        }];
        let any = win_rate_table(&sweep_with(cells.clone()), 1.0);
        assert!((any.percentages[0][0] - 100.0).abs() < 1e-9);
        let by_ten = win_rate_table(&sweep_with(cells), 1.1);
        // 105 is not ≥ 110 → no win; 115 is.
        assert!((by_ten.percentages[0][0] - 0.0).abs() < 1e-9);
        assert!((by_ten.percentages[1][0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn overall_rate() {
        let cells = vec![
            Cell {
                point: point(),
                error: 0.1,
                means: vec![100.0, 110.0, 90.0],
                link_util: None,
                robustness: None,
                audit_findings: 0,
            },
            Cell {
                point: point(),
                error: 0.2,
                means: vec![100.0, 120.0, 130.0],
                link_util: None,
                robustness: None,
                audit_findings: 0,
            },
        ];
        // Wins: 3 of 4 comparisons.
        let rate = overall_win_rate(&sweep_with(cells));
        assert!((rate - 75.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn requires_two_columns() {
        let s = SweepResult {
            labels: vec!["RUMR".into()],
            cells: vec![],
        };
        let _ = win_rate_table(&s, 1.0);
    }
}
