//! Figures 4–7: relative-makespan series versus error.
//!
//! Every figure in the paper's evaluation plots, for each competitor, the
//! mean over some slice of the parameter space of
//! `makespan(competitor) / makespan(reference)` as a function of the error
//! magnitude (values above 1 mean the reference — RUMR — wins):
//!
//! * **Fig. 4(a)**: whole grid.
//! * **Fig. 4(b)**: subset `cLat < 0.3 ∧ nLat < 0.3`.
//! * **Fig. 5**: single point `N = 20, r = 1.8, cLat = 0.3, nLat = 0.9`.
//! * **Fig. 6**: fixed-split variants RUMR_50 … RUMR_90 normalized to
//!   original RUMR.
//! * **Fig. 7**: plain-phase-1 RUMR normalized to original RUMR.

use crate::grid::GridPoint;
use crate::sweep::SweepResult;

/// A relative-makespan series set: for each competitor (reference
/// excluded), mean normalized makespan per error value.
#[derive(Debug, Clone, PartialEq)]
pub struct RelativeSeries {
    /// Error values (x axis), ascending.
    pub errors: Vec<f64>,
    /// Series labels (the competitors, reference excluded).
    pub labels: Vec<String>,
    /// `values[series][error_index]`: mean of competitor/reference
    /// makespan ratios over the included cells.
    pub values: Vec<Vec<f64>>,
    /// Cells included per error value.
    pub cell_counts: Vec<usize>,
}

impl RelativeSeries {
    /// The series for a given competitor label.
    pub fn series(&self, label: &str) -> Option<&[f64]> {
        let i = self.labels.iter().position(|l| l == label)?;
        Some(&self.values[i])
    }
}

/// Compute relative-makespan series from a sweep whose first column is the
/// reference, keeping only cells for which `filter` returns true.
///
/// # Panics
///
/// Panics if the sweep has fewer than two competitors.
pub fn relative_series<F: Fn(&GridPoint) -> bool>(
    sweep: &SweepResult,
    filter: F,
) -> RelativeSeries {
    assert!(
        sweep.labels.len() >= 2,
        "need a reference and at least one competitor"
    );
    let mut errors: Vec<f64> = sweep.cells.iter().map(|c| c.error).collect();
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    errors.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let n_series = sweep.labels.len() - 1;
    let mut sums = vec![vec![0.0; errors.len()]; n_series];
    let mut counts = vec![0usize; errors.len()];

    for cell in &sweep.cells {
        if !filter(&cell.point) {
            continue;
        }
        let e_idx = errors
            .iter()
            .position(|&e| (e - cell.error).abs() < 1e-12)
            .expect("error value present");
        counts[e_idx] += 1;
        let reference = cell.means[0];
        for (s, &m) in cell.means[1..].iter().enumerate() {
            sums[s][e_idx] += m / reference;
        }
    }

    let values = sums
        .into_iter()
        .map(|row| {
            row.iter()
                .zip(&counts)
                .map(|(&sum, &n)| if n == 0 { f64::NAN } else { sum / n as f64 })
                .collect()
        })
        .collect();

    RelativeSeries {
        errors,
        labels: sweep.labels[1..].to_vec(),
        values,
        cell_counts: counts,
    }
}

/// Fig. 4(a): all cells.
pub fn fig4a(sweep: &SweepResult) -> RelativeSeries {
    relative_series(sweep, |_| true)
}

/// Fig. 4(b): low-latency subset, `cLat < 0.3` and `nLat < 0.3`.
pub fn fig4b(sweep: &SweepResult) -> RelativeSeries {
    relative_series(sweep, |p| p.comp_latency < 0.3 && p.net_latency < 0.3)
}

/// Fig. 5's platform point: `N = 20`, `r = 1.8` (B = 36), `cLat = 0.3`,
/// `nLat = 0.9`.
pub fn fig5_point() -> GridPoint {
    GridPoint {
        n: 20,
        ratio: 1.8,
        comp_latency: 0.3,
        net_latency: 0.9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Cell;

    fn pt(clat: f64, nlat: f64) -> GridPoint {
        GridPoint {
            n: 10,
            ratio: 1.5,
            comp_latency: clat,
            net_latency: nlat,
        }
    }

    fn sweep() -> SweepResult {
        SweepResult {
            labels: vec!["RUMR".into(), "UMR".into()],
            cells: vec![
                Cell {
                    point: pt(0.1, 0.1),
                    error: 0.0,
                    means: vec![100.0, 110.0],
                    link_util: None,
                    robustness: None,
                    audit_findings: 0,
                },
                Cell {
                    point: pt(0.5, 0.5),
                    error: 0.0,
                    means: vec![100.0, 130.0],
                    link_util: None,
                    robustness: None,
                    audit_findings: 0,
                },
                Cell {
                    point: pt(0.1, 0.1),
                    error: 0.2,
                    means: vec![100.0, 150.0],
                    link_util: None,
                    robustness: None,
                    audit_findings: 0,
                },
                Cell {
                    point: pt(0.5, 0.5),
                    error: 0.2,
                    means: vec![100.0, 170.0],
                    link_util: None,
                    robustness: None,
                    audit_findings: 0,
                },
            ],
        }
    }

    #[test]
    fn averages_ratios_per_error() {
        let s = fig4a(&sweep());
        assert_eq!(s.errors, vec![0.0, 0.2]);
        assert_eq!(s.labels, vec!["UMR"]);
        assert_eq!(s.cell_counts, vec![2, 2]);
        let umr = s.series("UMR").unwrap();
        assert!((umr[0] - 1.2).abs() < 1e-12); // (1.1 + 1.3)/2
        assert!((umr[1] - 1.6).abs() < 1e-12); // (1.5 + 1.7)/2
    }

    #[test]
    fn filter_selects_subset() {
        let s = fig4b(&sweep());
        // Only the (0.1, 0.1) cells qualify.
        assert_eq!(s.cell_counts, vec![1, 1]);
        let umr = s.series("UMR").unwrap();
        assert!((umr[0] - 1.1).abs() < 1e-12);
        assert!((umr[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_filter_yields_nan() {
        let s = relative_series(&sweep(), |_| false);
        assert!(s.values[0].iter().all(|v| v.is_nan()));
        assert_eq!(s.cell_counts, vec![0, 0]);
    }

    #[test]
    fn missing_label_is_none() {
        let s = fig4a(&sweep());
        assert!(s.series("nope").is_none());
    }

    #[test]
    fn fig5_point_matches_paper() {
        let p = fig5_point();
        assert_eq!(p.n, 20);
        assert!((p.ratio * p.n as f64 - 36.0).abs() < 1e-12);
    }
}
