//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use — `criterion_group!`
//! / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `bench_with_input`, and
//! [`BenchmarkId::from_parameter`] — backed by a simple wall-clock timing
//! loop that prints one summary line per benchmark. No statistics, plots, or
//! baselines: enough to run `cargo bench` and catch gross regressions while
//! keeping the build fully offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from the parameter value alone (upstream renders it as
    /// `group/parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Build an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup iteration.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("bench {name:<40} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!(
        "bench {name:<40} {:>12.3} µs/iter ({} iters)",
        per_iter * 1e6,
        b.iters
    );
}

/// Top-level benchmark driver (vastly simplified from upstream).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark one parameterized input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&full, &b);
        self
    }

    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Define a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        for n in [1usize, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| std::hint::black_box(n * 2))
            });
        }
        group.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs() {
        smoke();
        let configured = Criterion::default().sample_size(3);
        assert_eq!(configured.sample_size, 3);
        let id = BenchmarkId::new("f", 7);
        assert_eq!(id.id, "f/7");
    }
}
