//! Summary statistics used by the experiment harness.
//!
//! The paper reports averages over 40 repetitions and over large slices of
//! its parameter grid (Tables 2–3, Figures 4–7). [`OnlineStats`] implements
//! Welford's numerically stable one-pass mean/variance so aggregation over
//! millions of simulation runs needs O(1) memory; [`quantile`] and
//! [`Summary`] support the more detailed reporting in EXPERIMENTS.md.

/// Welford one-pass accumulator for count / mean / variance / min / max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Linearly interpolated quantile of a sample; `q` in `[0, 1]`.
///
/// Sorts a copy of the data — intended for end-of-run reporting, not hot
/// loops. Returns `None` for an empty slice or out-of-range `q`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(v[lo]);
    }
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// A one-shot statistical summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn of(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut stats = OnlineStats::new();
        for &x in data {
            stats.push(x);
        }
        Some(Summary {
            count: data.len(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: stats.min(),
            median: quantile(data, 0.5).expect("non-empty"),
            max: stats.max(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn sample_variance_bessel() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..400] {
            left.push(x);
        }
        for &x in &data[400..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(5.0));
        assert_eq!(quantile(&data, 0.5), Some(3.0));
        assert_eq!(quantile(&data, 0.25), Some(2.0));
        // Interpolated.
        assert_eq!(quantile(&[1.0, 2.0], 0.5), Some(1.5));
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 0.5), Some(1.0));
        assert_eq!(quantile(&[1.0, 2.0], -0.1), None);
        assert_eq!(quantile(&[1.0, 2.0], 1.1), None);
    }

    #[test]
    fn quantile_unsorted_input() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&data, 0.5), Some(3.0));
    }

    #[test]
    fn summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!(Summary::of(&[]).is_none());
    }
}
