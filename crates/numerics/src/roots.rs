//! One-dimensional root finding: bisection and Brent's method.
//!
//! The UMR scheduler frames "how many rounds, and how big is the first
//! chunk?" as a constrained optimization; after eliminating the Lagrange
//! multiplier the problem collapses to finding the root of a scalar function
//! of the (continuous) round count `M`. The paper reports solving it "by
//! bisection", which [`bisect`] reproduces; [`brent`] is a faster
//! superlinear alternative used by default, with bisection as the fallback
//! of last resort.

use std::fmt;

/// Error returned by the root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so no root is bracketed.
    NotBracketed {
        /// Function value at the left end of the interval.
        fa: f64,
        /// Function value at the right end of the interval.
        fb: f64,
    },
    /// The iteration limit was reached before the tolerance was met.
    MaxIterations {
        /// Best estimate of the root when the limit was hit.
        best: f64,
    },
    /// The function returned a non-finite value inside the interval.
    NonFinite {
        /// Point at which the function was non-finite.
        at: f64,
    },
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NotBracketed { fa, fb } => {
                write!(f, "root not bracketed: f(a) = {fa}, f(b) = {fb}")
            }
            RootError::MaxIterations { best } => {
                write!(f, "maximum iterations reached; best estimate {best}")
            }
            RootError::NonFinite { at } => write!(f, "function non-finite at {at}"),
        }
    }
}

impl std::error::Error for RootError {}

/// Absolute x-tolerance used by the schedulers when solving for round counts.
///
/// Round counts are eventually rounded to integers, so 1e-9 is far more than
/// enough; the cost is a handful of extra iterations.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Default iteration budget. Bisection halves the interval each step, so 200
/// iterations resolve any double-precision bracket.
pub const DEFAULT_MAX_ITER: usize = 200;

fn check_finite(x: f64, fx: f64) -> Result<(), RootError> {
    if fx.is_finite() {
        Ok(())
    } else {
        Err(RootError::NonFinite { at: x })
    }
}

/// Find a root of `f` in `[a, b]` by bisection.
///
/// Requires `f(a)` and `f(b)` to have opposite signs (a zero at either
/// endpoint is returned immediately). Converges linearly but is
/// unconditionally robust, matching the method referenced in the paper.
///
/// # Errors
///
/// [`RootError::NotBracketed`] if the signs match, [`RootError::NonFinite`]
/// if `f` blows up inside the interval.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    let mut fa = f(a);
    check_finite(a, fa)?;
    if fa == 0.0 {
        return Ok(a);
    }
    let fb = f(b);
    check_finite(b, fb)?;
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { fa, fb });
    }
    let mut mid = 0.5 * (a + b);
    for _ in 0..max_iter {
        mid = 0.5 * (a + b);
        let fm = f(mid);
        check_finite(mid, fm)?;
        if fm == 0.0 || (b - a) * 0.5 < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(RootError::MaxIterations { best: mid })
}

/// Find a root of `f` in `[a, b]` with Brent's method.
///
/// Combines bisection, secant, and inverse quadratic interpolation; keeps
/// bisection's bracketing guarantee while usually converging superlinearly.
/// Same bracketing requirements as [`bisect`].
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    check_finite(a, fa)?;
    if fa == 0.0 {
        return Ok(a);
    }
    let mut fb = f(b);
    check_finite(b, fb)?;
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { fa, fb });
    }
    // Ensure |f(b)| <= |f(a)|: b is the current best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let hi = b;
        let (lo, hi) = if lo < hi { (lo, hi) } else { (hi, lo) };
        let cond_interval = s < lo || s > hi;
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_dflag = !mflag && (s - b).abs() >= d.abs() / 2.0;
        let cond_tol_m = mflag && (b - c).abs() < tol;
        let cond_tol_d = !mflag && d.abs() < tol;
        if cond_interval || cond_mflag || cond_dflag || cond_tol_m || cond_tol_d {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        check_finite(s, fs)?;
        d = b - c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations { best: b })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_linear() {
        let r = bisect(|x| x - 3.0, 0.0, 10.0, 1e-12, 200).unwrap();
        assert!((r - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 5.0, 1e-12, 200).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 5.0, 0.0, 5.0, 1e-12, 200).unwrap(), 5.0);
    }

    #[test]
    fn bisect_swapped_interval() {
        let r = bisect(|x| x - 3.0, 10.0, 0.0, 1e-12, 200).unwrap();
        assert!((r - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_transcendental() {
        // x = cos(x) has root ~0.7390851332151607
        let r = bisect(|x| x - x.cos(), 0.0, 1.0, 1e-12, 200).unwrap();
        assert!((r - 0.739_085_133_215_160_7).abs() < 1e-9);
    }

    #[test]
    fn bisect_not_bracketed() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 200).unwrap_err();
        assert!(matches!(e, RootError::NotBracketed { .. }));
    }

    #[test]
    fn bisect_non_finite() {
        // NaN exactly at the first midpoint (0.0).
        let f = |x: f64| {
            if x == 0.0 {
                f64::NAN
            } else {
                x
            }
        };
        let e = bisect(f, -1.0, 1.0, 1e-12, 200).unwrap_err();
        assert!(matches!(e, RootError::NonFinite { .. }));
    }

    #[test]
    fn brent_linear() {
        let r = brent(|x| 2.0 * x - 7.0, -10.0, 10.0, 1e-13, 100).unwrap();
        assert!((r - 3.5).abs() < 1e-10);
    }

    #[test]
    fn brent_cubic() {
        // (x+3)(x-1)^2 has a sign-changing root at -3.
        let f = |x: f64| (x + 3.0) * (x - 1.0) * (x - 1.0);
        let r = brent(f, -4.0, 0.0, 1e-13, 100).unwrap();
        assert!((r + 3.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn brent_transcendental() {
        let r = brent(|x| x.exp() - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r - std::f64::consts::LN_2).abs() < 1e-10);
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.powi(3) - 2.0 * x - 5.0; // classic Brent test, root ~2.0945514815
        let rb = bisect(f, 2.0, 3.0, 1e-12, 300).unwrap();
        let rr = brent(f, 2.0, 3.0, 1e-12, 100).unwrap();
        assert!((rb - rr).abs() < 1e-8);
        assert!((rr - 2.094_551_481_542_327).abs() < 1e-9);
    }

    #[test]
    fn brent_not_bracketed() {
        let e = brent(|_| 1.0, 0.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(e, RootError::NotBracketed { .. }));
    }

    #[test]
    fn max_iterations_reported() {
        // Zero iterations allowed -> MaxIterations with a best estimate.
        let e = bisect(|x| x - 0.5, 0.0, 1.0, 0.0, 0).unwrap_err();
        assert!(matches!(e, RootError::MaxIterations { .. }));
    }

    #[test]
    fn error_display() {
        let s = format!("{}", RootError::NotBracketed { fa: 1.0, fb: 2.0 });
        assert!(s.contains("not bracketed"));
        let s = format!("{}", RootError::MaxIterations { best: 1.5 });
        assert!(s.contains("1.5"));
        let s = format!("{}", RootError::NonFinite { at: 0.0 });
        assert!(s.contains("non-finite"));
    }
}
