//! Random distributions for the prediction-error model of the RUMR paper.
//!
//! The paper (§4.1) models prediction errors as: the ratio of *predicted* to
//! *effective* execution time is normally distributed with mean 1 and
//! standard deviation `error`, truncated to stay positive. The paper also
//! reports that a uniformly-distributed error model produced essentially the
//! same results, so a matched-variance uniform variant is provided.
//!
//! The `rand` crate supplies only uniform sampling; the normal distribution
//! is implemented here via the Box–Muller transform (both values of each
//! pair are used).

use rand::Rng;

/// A distribution over the prediction ratio relating predicted and
/// effective execution times (mean 1, standard deviation = the error
/// magnitude).
///
/// How the ratio is applied (multiplicatively, `eff = pred·X`, or as the
/// paper's literal inverse, `eff = pred/X`) is decided by the simulation
/// layer; see `dls-sim`'s error model documentation for why the
/// multiplicative form is the default.
pub trait Perturbation {
    /// Draw one ratio sample. Implementations must return a finite,
    /// strictly positive value.
    fn sample_ratio<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64;

    /// Convert a predicted duration into an effective duration by scaling
    /// with one drawn ratio.
    fn perturb<R: Rng + ?Sized>(&mut self, rng: &mut R, predicted: f64) -> f64 {
        let x = self.sample_ratio(rng);
        debug_assert!(x.is_finite() && x > 0.0, "invalid ratio {x}");
        predicted * x
    }
}

/// Standard Box–Muller normal sampler with the given mean and standard
/// deviation. Caches the second variate of each generated pair.
#[derive(Debug, Clone)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Create a normal distribution `N(mean, std_dev²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be finite and non-negative"
        );
        Normal {
            mean,
            std_dev,
            spare: None,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std_dev * z;
        }
        // Box–Muller: u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.spare = Some(z1);
        self.mean + self.std_dev * z0
    }
}

/// Truncated normal prediction-ratio distribution `N(1, error²)` restricted
/// to `X > floor` (rejection sampling), the model of §4.1 of the paper
/// ("truncated to avoid negative values").
///
/// A small positive floor (default `1e-3`) is used instead of 0 so that the
/// ratio can safely appear in denominators; at the paper's largest error
/// (0.5) the probability mass below the floor is ≈ 2.3 %·10⁻², so the floor
/// choice is statistically irrelevant.
#[derive(Debug, Clone)]
pub struct TruncatedNormal {
    normal: Normal,
    floor: f64,
}

/// Default lower truncation bound for [`TruncatedNormal`].
pub const DEFAULT_RATIO_FLOOR: f64 = 1e-3;

impl TruncatedNormal {
    /// The paper's error model: mean 1, standard deviation `error`,
    /// truncated to `X > DEFAULT_RATIO_FLOOR`.
    ///
    /// # Panics
    ///
    /// Panics if `error` is negative or non-finite.
    pub fn from_error(error: f64) -> Self {
        Self::new(1.0, error, DEFAULT_RATIO_FLOOR)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-finite, `std_dev < 0`, or
    /// `floor >= mean` (rejection would rarely/never terminate for means at
    /// or below the floor).
    pub fn new(mean: f64, std_dev: f64, floor: f64) -> Self {
        assert!(floor.is_finite() && floor >= 0.0, "floor must be >= 0");
        assert!(
            mean > floor,
            "mean ({mean}) must exceed the truncation floor ({floor})"
        );
        TruncatedNormal {
            normal: Normal::new(mean, std_dev),
            floor,
        }
    }

    /// The standard deviation of the underlying (untruncated) normal.
    pub fn error(&self) -> f64 {
        self.normal.std_dev()
    }
}

impl Perturbation for TruncatedNormal {
    fn sample_ratio<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.normal.std_dev() == 0.0 {
            return self.normal.mean();
        }
        // Rejection sampling. With mean 1 and the paper's error <= 0.5 the
        // acceptance probability is > 97.7 %, so this terminates immediately
        // in practice; the iteration cap is pure defensive programming.
        for _ in 0..10_000 {
            let x = self.normal.sample(rng);
            if x > self.floor {
                return x;
            }
        }
        // Statistically unreachable for sane parameters.
        self.floor + self.normal.std_dev().max(f64::MIN_POSITIVE)
    }
}

/// Uniform prediction-ratio distribution with the same mean (1) and standard
/// deviation (`error`) as the paper's truncated normal:
/// `X ~ U(1 − √3·error, 1 + √3·error)`, lower end clamped to a positive
/// floor. Used to reproduce the paper's remark that "results were
/// essentially similar" under a uniform error model.
#[derive(Debug, Clone)]
pub struct MatchedUniform {
    lo: f64,
    hi: f64,
}

impl MatchedUniform {
    /// Build the matched-variance uniform ratio distribution for a given
    /// `error` (standard deviation).
    ///
    /// # Panics
    ///
    /// Panics if `error` is negative or non-finite.
    pub fn from_error(error: f64) -> Self {
        assert!(error.is_finite() && error >= 0.0, "error must be >= 0");
        let half_width = 3.0_f64.sqrt() * error;
        let lo = (1.0 - half_width).max(DEFAULT_RATIO_FLOOR);
        let hi = 1.0 + half_width;
        MatchedUniform { lo, hi }
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Perturbation for MatchedUniform {
    fn sample_ratio<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        rng.gen_range(self.lo..self.hi)
    }
}

/// The degenerate "no error" perturbation: every ratio is exactly 1.
/// Schedulers run against their exact predictions, which is the error = 0
/// corner the paper uses to show RUMR defaulting to UMR.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoError;

impl Perturbation for NoError {
    fn sample_ratio<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn normal_moments() {
        let mut n = Normal::new(5.0, 2.0);
        let mut r = rng();
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            stats.push(n.sample(&mut r));
        }
        assert!((stats.mean() - 5.0).abs() < 0.02, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - 2.0).abs() < 0.02,
            "std {}",
            stats.std_dev()
        );
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut n = Normal::new(3.0, 0.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(n.sample(&mut r), 3.0);
        }
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn normal_rejects_negative_std() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn truncated_normal_moments_small_error() {
        // With error = 0.1 truncation is negligible: moments match N(1, 0.1).
        let mut d = TruncatedNormal::from_error(0.1);
        let mut r = rng();
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            stats.push(d.sample_ratio(&mut r));
        }
        assert!((stats.mean() - 1.0).abs() < 0.005, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - 0.1).abs() < 0.005,
            "std {}",
            stats.std_dev()
        );
    }

    #[test]
    fn truncated_normal_always_positive() {
        let mut d = TruncatedNormal::from_error(0.5);
        let mut r = rng();
        for _ in 0..100_000 {
            let x = d.sample_ratio(&mut r);
            assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn truncated_normal_zero_error_is_exact() {
        let mut d = TruncatedNormal::from_error(0.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample_ratio(&mut r), 1.0);
            assert_eq!(d.perturb(&mut r, 42.0), 42.0);
        }
    }

    #[test]
    fn perturb_scales_by_ratio() {
        // A ratio of exactly 1 leaves the prediction unchanged.
        let mut d = NoError;
        let mut r = rng();
        assert_eq!(d.perturb(&mut r, 10.0), 10.0);
    }

    #[test]
    fn matched_uniform_moments() {
        let error = 0.3;
        let mut d = MatchedUniform::from_error(error);
        let mut r = rng();
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            let x = d.sample_ratio(&mut r);
            assert!(x > 0.0);
            stats.push(x);
        }
        assert!((stats.mean() - 1.0).abs() < 0.01, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - error).abs() < 0.01,
            "std {}",
            stats.std_dev()
        );
    }

    #[test]
    fn matched_uniform_zero_error_constant() {
        let mut d = MatchedUniform::from_error(0.0);
        let mut r = rng();
        assert_eq!(d.sample_ratio(&mut r), 1.0);
    }

    #[test]
    fn matched_uniform_clamps_floor() {
        // error = 0.5 => lo would be 1 - 0.866 = 0.134 > floor; error = 0.6
        // => lo = -0.039, clamped.
        let d = MatchedUniform::from_error(0.6);
        assert!(d.lo() >= DEFAULT_RATIO_FLOOR);
        assert!(d.hi() > 1.0);
    }

    #[test]
    #[should_panic(expected = "mean")]
    fn truncated_normal_rejects_mean_below_floor() {
        let _ = TruncatedNormal::new(0.0, 1.0, 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d1 = TruncatedNormal::from_error(0.25);
        let mut d2 = TruncatedNormal::from_error(0.25);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(d1.sample_ratio(&mut r1), d2.sample_ratio(&mut r2));
        }
    }
}
