//! Numerical substrate for the divisible-load scheduling suite.
//!
//! The RUMR paper's algorithms need a small amount of numerical machinery:
//!
//! * **Root finding** ([`roots`]): the UMR round-count optimization is a
//!   one-dimensional root-finding problem ("solved numerically by bisection"
//!   in the paper). We provide bisection and Brent's method.
//! * **Dense linear algebra** ([`linalg`]): the multi-installment (MI-x)
//!   baseline requires solving an `xN × xN` linear system encoding its
//!   no-idle / equal-finish conditions. We provide LU with partial pivoting.
//! * **Distributions** ([`dist`]): the paper's prediction-error model is a
//!   truncated normal on the predicted/effective-time ratio. `rand` only
//!   gives us uniform bits, so Box–Muller normal sampling, truncation, and a
//!   matched-variance uniform alternative are implemented here.
//! * **Statistics** ([`stats`]): Welford online mean/variance, quantiles and
//!   summary types used by the experiment harness.
//! * **Deterministic seeding** ([`rng`]): SplitMix64-based seed derivation so
//!   each (configuration, repetition) pair gets an independent, reproducible
//!   RNG stream.
//!
//! Everything is implemented from scratch (no linear-algebra or statistics
//! dependencies) and unit/property tested.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod linalg;
pub mod rng;
pub mod roots;
pub mod stats;

pub use dist::{MatchedUniform, NoError, Normal, Perturbation, TruncatedNormal};
pub use linalg::{LinAlgError, Lu, Matrix};
pub use rng::{seed_for, SeedDeriver};
pub use roots::{bisect, brent, RootError};
pub use stats::{quantile, OnlineStats, Summary};
