//! Deterministic seed derivation for reproducible experiments.
//!
//! The paper averages every data point over 40 repetitions. For the sweep to
//! be reproducible *and* parallelizable, each (experiment configuration,
//! repetition) pair must get an independent RNG stream whose seed does not
//! depend on scheduling order. [`SeedDeriver`] mixes a root seed with an
//! arbitrary sequence of labels/indices through SplitMix64 — the standard
//! seed-expansion generator, chosen because consecutive or structured inputs
//! still produce well-distributed outputs.

/// One round of the SplitMix64 output function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hierarchical, order-independent seed derivation.
///
/// ```
/// use dls_numerics::rng::SeedDeriver;
///
/// let root = SeedDeriver::new(42);
/// let config_stream = root.child(17); // e.g. configuration index
/// let rep0 = config_stream.child(0).seed();
/// let rep1 = config_stream.child(1).seed();
/// assert_ne!(rep0, rep1);
/// // Re-deriving gives identical seeds:
/// assert_eq!(rep0, SeedDeriver::new(42).child(17).child(0).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedDeriver {
    state: u64,
}

impl SeedDeriver {
    /// Start a derivation chain from a root seed.
    pub fn new(root: u64) -> Self {
        SeedDeriver {
            state: splitmix64(root),
        }
    }

    /// Derive a child stream for the given label (index, id, hash, ...).
    pub fn child(&self, label: u64) -> Self {
        // Mix the label in with a multiplier so child(a).child(b) differs
        // from child(b).child(a), then re-diffuse.
        SeedDeriver {
            state: splitmix64(
                self.state
                    .rotate_left(17)
                    .wrapping_mul(0xD605_1B94_45A6_34C1)
                    ^ splitmix64(label),
            ),
        }
    }

    /// The 64-bit seed for this node, suitable for `StdRng::seed_from_u64`.
    pub fn seed(&self) -> u64 {
        self.state
    }
}

/// Convenience: derive the seed for `(config_index, repetition)` under a
/// root seed — the layout used throughout the experiment harness.
pub fn seed_for(root: u64, config_index: u64, repetition: u64) -> u64 {
    SeedDeriver::new(root)
        .child(config_index)
        .child(repetition)
        .seed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(seed_for(1, 2, 3), seed_for(1, 2, 3));
        assert_eq!(
            SeedDeriver::new(9).child(4).seed(),
            SeedDeriver::new(9).child(4).seed()
        );
    }

    #[test]
    fn sensitive_to_every_level() {
        let base = seed_for(1, 2, 3);
        assert_ne!(base, seed_for(0, 2, 3));
        assert_ne!(base, seed_for(1, 0, 3));
        assert_ne!(base, seed_for(1, 2, 0));
    }

    #[test]
    fn order_matters() {
        let ab = SeedDeriver::new(7).child(1).child(2).seed();
        let ba = SeedDeriver::new(7).child(2).child(1).seed();
        assert_ne!(ab, ba);
    }

    #[test]
    fn no_collisions_on_dense_grid() {
        // 100 configs x 100 reps under one root: all seeds distinct.
        let mut seen = HashSet::new();
        for c in 0..100 {
            for r in 0..100 {
                assert!(
                    seen.insert(seed_for(0xDEADBEEF, c, r)),
                    "collision at {c},{r}"
                );
            }
        }
    }

    #[test]
    fn consecutive_labels_diffuse() {
        // Hamming distance between seeds of consecutive labels should be
        // substantial on average (basic avalanche sanity check).
        let root = SeedDeriver::new(0);
        let mut total = 0u32;
        for i in 0..1000u64 {
            let a = root.child(i).seed();
            let b = root.child(i + 1).seed();
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 1000.0;
        assert!(avg > 24.0 && avg < 40.0, "avg hamming distance {avg}");
    }
}
