//! Minimal dense linear algebra: row-major matrices and LU decomposition
//! with partial pivoting.
//!
//! The multi-installment (MI-x) baseline of the RUMR paper determines its
//! chunk sizes from a dense `xN × xN` linear system (no-idle conditions +
//! equal-finish conditions + total-workload constraint). The systems are
//! small (at most a few hundred unknowns for the paper's parameter grid), so
//! a straightforward `O(n^3)` LU with partial pivoting is more than fast
//! enough and keeps the workspace dependency-free.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error type for linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// The matrix is singular (a pivot column was numerically zero).
    Singular {
        /// Elimination step at which the zero pivot appeared.
        at_column: usize,
    },
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::Singular { at_column } => {
                write!(f, "matrix is singular at elimination column {at_column}")
            }
            LinAlgError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for LinAlgError {}

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// [`LinAlgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        if x.len() != self.cols {
            return Err(LinAlgError::ShapeMismatch {
                what: "matrix-vector product dimension",
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Maximum absolute residual `‖A·x − b‖_∞`; used in tests and by the
    /// MI solver to sanity-check its solution.
    pub fn residual_inf(&self, x: &[f64], b: &[f64]) -> Result<f64, LinAlgError> {
        if b.len() != self.rows {
            return Err(LinAlgError::ShapeMismatch {
                what: "residual right-hand side dimension",
            });
        }
        let ax = self.mul_vec(x)?;
        Ok(ax
            .iter()
            .zip(b)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// LU-decompose (with partial pivoting) and solve `A·x = b` in one call.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        Lu::decompose(self)?.solve(b)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// `L` (unit lower triangular) and `U` are stored packed in a single matrix;
/// `perm` records row exchanges.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation, needed for the determinant.
    perm_sign: f64,
}

/// Pivots smaller than this (relative to the column's max) are treated as
/// numerically singular.
const PIVOT_EPS: f64 = 1e-13;

impl Lu {
    /// Factorize a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinAlgError::ShapeMismatch`] for non-square input,
    /// [`LinAlgError::Singular`] when a pivot column is numerically zero.
    pub fn decompose(a: &Matrix) -> Result<Self, LinAlgError> {
        if a.rows != a.cols {
            return Err(LinAlgError::ShapeMismatch {
                what: "LU requires a square matrix",
            });
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        // Scale factors for implicit scaled pivoting: makes the singularity
        // threshold meaningful for badly row-scaled systems.
        let mut scale = vec![0.0; n];
        for i in 0..n {
            let row_max = (0..n).map(|j| lu[(i, j)].abs()).fold(0.0, f64::max);
            if row_max == 0.0 {
                return Err(LinAlgError::Singular { at_column: 0 });
            }
            scale[i] = 1.0 / row_max;
        }

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = 0.0;
            for i in k..n {
                let v = scale[i] * lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(LinAlgError::Singular { at_column: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                scale.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solve `A·x = b` using the precomputed factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(LinAlgError::ShapeMismatch {
                what: "solve right-hand side dimension",
            });
        }
        // Forward substitution with permutation applied: L·y = P·b.
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for (j, &xj) in x.iter().enumerate().take(i) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum;
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix (product of U's diagonal times the
    /// permutation sign).
    pub fn det(&self) -> f64 {
        let n = self.lu.rows;
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.perm_sign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn identity_solve() {
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        assert_close(&x, &b, 1e-14);
    }

    #[test]
    fn known_2x2() {
        // [2 1; 1 3] x = [3; 5]  ->  x = [4/5, 7/5]
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert_close(&x, &[0.8, 1.4], 1e-12);
    }

    #[test]
    fn known_3x3_with_pivoting() {
        // First pivot is zero; partial pivoting must kick in.
        let a = Matrix::from_rows(3, 3, vec![0.0, 2.0, 1.0, 1.0, 1.0, 1.0, 2.0, 1.0, -1.0]);
        let b = vec![4.0, 3.0, 0.0];
        let x = a.solve(&b).unwrap();
        assert!(a.residual_inf(&x, &b).unwrap() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let e = a.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(e, LinAlgError::Singular { .. }));
    }

    #[test]
    fn zero_row_detected() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let e = Lu::decompose(&a).unwrap_err();
        assert!(matches!(e, LinAlgError::Singular { .. }));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinAlgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rhs_dimension_checked() {
        let a = Matrix::identity(3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(LinAlgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.mul_vec(&[1.0]),
            Err(LinAlgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(2, 2, vec![3.0, 1.0, 4.0, 2.0]);
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.det() - 2.0).abs() < 1e-12);

        let i5 = Matrix::identity(5);
        assert!((Lu::decompose(&i5).unwrap().det() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn determinant_sign_with_pivot() {
        // Swapping rows of the identity gives det = -1.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn moderately_sized_random_system() {
        // Deterministic pseudo-random matrix (LCG), solve and check residual.
        let n = 60;
        let mut state: u64 = 0x1234_5678;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            // Diagonal dominance to guarantee nonsingularity.
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b).unwrap();
        assert!(a.residual_inf(&x, &b).unwrap() < 1e-9);
    }

    #[test]
    fn badly_scaled_rows() {
        // One row scaled by 1e12: scaled pivoting must still solve accurately.
        let a = Matrix::from_rows(2, 2, vec![1e12, 2e12, 1.0, 3.0]);
        let b = vec![3e12, 4.0];
        let x = a.solve(&b).unwrap();
        // Exact solution: x1 + 2 x2 = 3, x1 + 3 x2 = 4 -> x2 = 1, x1 = 1.
        assert_close(&x, &[1.0, 1.0], 1e-6);
    }

    #[test]
    fn mul_vec_correct() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]).unwrap();
        assert_close(&y, &[-2.0, -2.0], 1e-14);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", LinAlgError::Singular { at_column: 3 }).contains("3"));
        assert!(format!("{}", LinAlgError::ShapeMismatch { what: "test" }).contains("test"));
    }
}
