//! Figure regeneration benches: each iteration recomputes one of the
//! paper's figures (4a, 4b, 5, 6, 7) on a reduced grid, and the series are
//! printed once per bench as a smoke reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dls_bench::bench_sweep_config;
use dls_experiments::{
    fig4a, fig4b, fig5_point, paper_competitors, relative_series, render_series, run_sweep,
    Competitor, Table1Grid,
};

fn bench_fig4a(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    let competitors = paper_competitors();
    let series = fig4a(&run_sweep(&cfg, &competitors));
    println!("\n{}", render_series("Fig 4(a) (bench sub-grid)", &series));
    c.bench_function("fig4a_regenerate", |b| {
        b.iter(|| black_box(fig4a(&run_sweep(black_box(&cfg), &competitors))))
    });
}

fn bench_fig4b(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    let competitors = paper_competitors();
    let series = fig4b(&run_sweep(&cfg, &competitors));
    println!("\n{}", render_series("Fig 4(b) (bench sub-grid)", &series));
    c.bench_function("fig4b_regenerate", |b| {
        b.iter(|| black_box(fig4b(&run_sweep(black_box(&cfg), &competitors))))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let mut cfg = bench_sweep_config();
    cfg.grid = Table1Grid::single(fig5_point());
    let competitors = paper_competitors();
    let series = relative_series(&run_sweep(&cfg, &competitors), |_| true);
    println!("\n{}", render_series("Fig 5 (bench errors)", &series));
    c.bench_function("fig5_regenerate", |b| {
        b.iter(|| {
            let sweep = run_sweep(black_box(&cfg), &competitors);
            black_box(relative_series(&sweep, |_| true))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    let competitors = vec![
        Competitor::RumrKnown,
        Competitor::RumrFixed(0.5),
        Competitor::RumrFixed(0.6),
        Competitor::RumrFixed(0.7),
        Competitor::RumrFixed(0.8),
        Competitor::RumrFixed(0.9),
    ];
    let series = relative_series(&run_sweep(&cfg, &competitors), |_| true);
    println!("\n{}", render_series("Fig 6 (bench sub-grid)", &series));
    c.bench_function("fig6_regenerate", |b| {
        b.iter(|| {
            let sweep = run_sweep(black_box(&cfg), &competitors);
            black_box(relative_series(&sweep, |_| true))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    let competitors = vec![Competitor::RumrKnown, Competitor::RumrPlain];
    let series = relative_series(&run_sweep(&cfg, &competitors), |_| true);
    println!("\n{}", render_series("Fig 7 (bench sub-grid)", &series));
    c.bench_function("fig7_regenerate", |b| {
        b.iter(|| {
            let sweep = run_sweep(black_box(&cfg), &competitors);
            black_box(relative_series(&sweep, |_| true))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4a, bench_fig4b, bench_fig5, bench_fig6, bench_fig7
}
criterion_main!(benches);
