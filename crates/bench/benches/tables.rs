//! Table regeneration benches: each iteration recomputes Table 2 / Table 3
//! on a reduced grid (the full grids are driven by the `dls-experiments`
//! binaries; see EXPERIMENTS.md for paper-vs-measured values). The rendered
//! rows are printed once per bench so `cargo bench` output doubles as a
//! smoke reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dls_bench::bench_sweep_config;
use dls_experiments::{paper_competitors, render_win_rate, run_sweep, win_rate_table};

fn bench_table2(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    let competitors = paper_competitors();
    // Print one instance so the bench run shows the regenerated rows.
    let table = win_rate_table(&run_sweep(&cfg, &competitors), 1.0);
    println!(
        "\n{}",
        render_win_rate("Table 2 (bench sub-grid): % RUMR wins", &table)
    );
    c.bench_function("table2_regenerate", |b| {
        b.iter(|| {
            let sweep = run_sweep(black_box(&cfg), &competitors);
            black_box(win_rate_table(&sweep, 1.0))
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let cfg = bench_sweep_config();
    let competitors = paper_competitors();
    let table = win_rate_table(&run_sweep(&cfg, &competitors), 1.1);
    println!(
        "\n{}",
        render_win_rate("Table 3 (bench sub-grid): % RUMR wins by >= 10%", &table)
    );
    c.bench_function("table3_regenerate", |b| {
        b.iter(|| {
            let sweep = run_sweep(black_box(&cfg), &competitors);
            black_box(win_rate_table(&sweep, 1.1))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_table3
}
criterion_main!(benches);
