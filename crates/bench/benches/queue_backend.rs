//! Event-queue backend comparison: the same pinned runs on the binary-heap
//! and calendar-queue backends, fault-free and under the benchmark's
//! Poisson fault process. Pair with `BENCH_sim.json`'s per-backend case
//! rows — this group is the microbench view of the same question ("which
//! backend moves events faster for this workload shape?").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rumr::{
    FaultModel, PoissonFaults, QueueBackend, RecoveryConfig, RunSpec, Scenario, SchedulerKind,
    SimConfig,
};

/// The benchmark snapshot's Poisson fault process (mttf 60, mttr 15).
fn faults() -> FaultModel {
    FaultModel::Poisson(PoissonFaults {
        mttf: 60.0,
        mttr: Some(15.0),
        link_mtbf: None,
        horizon: 2000.0,
        seed: 11,
    })
}

fn config(backend: QueueBackend, faulty: bool) -> SimConfig {
    SimConfig {
        queue_backend: backend,
        faults: if faulty { faults() } else { FaultModel::None },
        ..SimConfig::default()
    }
}

/// Fault-free runs through the buffer-reusing runner, per backend.
fn bench_backends_fault_free(c: &mut Criterion) {
    let scenario = Scenario::table1(20, 1.6, 0.3, 0.2, 0.3);
    let kind = SchedulerKind::rumr_known_error(0.3);
    let mut group = c.benchmark_group("queue_backend/fault_free");
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.name()),
            &backend,
            |b, &backend| {
                let mut runner = scenario.runner(config(backend, false));
                let proto = runner.prototype(&kind).unwrap();
                let spec = RunSpec::new(kind)
                    .config(config(backend, false))
                    .with_prototype(proto);
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(runner.execute_at(&spec, seed).unwrap().makespan)
                })
            },
        );
    }
    group.finish();
}

/// Faulty runs (crash/recover + redispatch churn) — the workload the
/// calendar backend and the fault-path pooling were built for.
fn bench_backends_faulty(c: &mut Criterion) {
    let scenario = Scenario::heterogeneous_demo(20, 0.3);
    let kind = SchedulerKind::HetUmr;
    let mut group = c.benchmark_group("queue_backend/faulty");
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.name()),
            &backend,
            |b, &backend| {
                let mut runner = scenario.runner(config(backend, true));
                let proto = runner.prototype(&kind).unwrap();
                let spec = RunSpec::new(kind)
                    .config(config(backend, true))
                    .recovering(RecoveryConfig::default())
                    .with_prototype(proto);
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(runner.execute_at(&spec, seed).unwrap().makespan)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends_fault_free, bench_backends_faulty);
criterion_main!(benches);
