//! Microbenchmarks for the numerical substrate: dense LU scaling (the MI
//! planner's cost driver), root finders, and the truncated-normal sampler
//! (drawn twice per chunk across millions of sweep simulations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dls_numerics::dist::{Perturbation, TruncatedNormal};
use dls_numerics::linalg::Matrix;
use dls_numerics::{bisect, brent};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dense_system(n: usize) -> (Matrix, Vec<f64>) {
    let mut a = Matrix::zeros(n, n);
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = next();
        }
        a[(i, i)] += n as f64;
    }
    let b = (0..n).map(|_| next()).collect();
    (a, b)
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_solve");
    // MI-x systems are (x·N)×(x·N): N=50, x=4 gives 200.
    for n in [20usize, 80, 200] {
        let (a, b) = dense_system(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.solve(black_box(&b)).unwrap()))
        });
    }
    group.finish();
}

fn bench_root_finders(c: &mut Criterion) {
    let f = |x: f64| x.powi(3) - 2.0 * x - 5.0;
    c.bench_function("bisect", |b| {
        b.iter(|| black_box(bisect(f, 2.0, 3.0, 1e-12, 300).unwrap()))
    });
    c.bench_function("brent", |b| {
        b.iter(|| black_box(brent(f, 2.0, 3.0, 1e-12, 100).unwrap()))
    });
}

fn bench_truncated_normal(c: &mut Criterion) {
    let mut dist = TruncatedNormal::from_error(0.3);
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("truncated_normal_sample", |b| {
        b.iter(|| black_box(dist.sample_ratio(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_lu,
    bench_root_finders,
    bench_truncated_normal
);
criterion_main!(benches);
