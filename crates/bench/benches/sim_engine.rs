//! Discrete-event engine throughput: one full simulated application run per
//! iteration, for each scheduler family, on a mid-size Table 1 platform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rumr::{RunSpec, Scenario, SchedulerKind, TraceMode};

fn bench_simulation(c: &mut Criterion) {
    let error = 0.3;
    let scenario = Scenario::table1(20, 1.6, 0.3, 0.2, error);
    let kinds = [
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 3 },
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::EqualStatic,
    ];
    let mut group = c.benchmark_group("simulate_run");
    for kind in kinds {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let spec = RunSpec::new(*kind).seed(seed);
                    black_box(scenario.execute(&spec).unwrap().makespan)
                })
            },
        );
    }
    group.finish();
}

fn bench_traced_simulation(c: &mut Criterion) {
    let scenario = Scenario::table1(20, 1.6, 0.3, 0.2, 0.3);
    let kind = SchedulerKind::rumr_known_error(0.3);
    let spec = RunSpec::new(kind).seed(1).trace_mode(TraceMode::Full);
    c.bench_function("simulate_run_traced", |b| {
        b.iter(|| black_box(scenario.execute(&spec).unwrap().num_chunks))
    });
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_scaling");
    for n in [10usize, 20, 50] {
        let scenario = Scenario::table1(n, 1.5, 0.2, 0.2, 0.3);
        let spec = RunSpec::new(SchedulerKind::rumr_known_error(0.3)).seed(1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(scenario.execute(&spec).unwrap().makespan))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_traced_simulation,
    bench_worker_scaling
);
criterion_main!(benches);
