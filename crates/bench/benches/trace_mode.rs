//! Engine observability cost: the same simulation run under each
//! [`TraceMode`], through the buffer-reusing runner (so the comparison
//! isolates recording cost, not allocation or planning cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rumr::{RunSpec, Scenario, SchedulerKind, SimConfig, TraceMode};

fn bench_trace_modes(c: &mut Criterion) {
    let error = 0.3;
    let scenario = Scenario::table1(20, 1.6, 0.3, 0.2, error);
    let kind = SchedulerKind::rumr_known_error(error);
    let modes = [
        ("off", TraceMode::Off),
        ("metrics_only", TraceMode::MetricsOnly),
        ("full", TraceMode::Full),
    ];
    let mut group = c.benchmark_group("trace_mode");
    for (label, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            let mut runner = scenario.runner(SimConfig {
                trace_mode: mode,
                ..Default::default()
            });
            let proto = runner.prototype(&kind).expect("planner accepts Table 1");
            let spec = RunSpec::new(kind)
                .config(SimConfig {
                    trace_mode: mode,
                    ..Default::default()
                })
                .with_prototype(proto);
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(runner.execute_at(&spec, seed).unwrap().makespan)
            })
        });
    }
    group.finish();
}

fn bench_full_with_consumers(c: &mut Criterion) {
    // What a traced sweep actually pays per run: record, validate the
    // trace's protocol invariants, derive trace metrics.
    let scenario = Scenario::table1(20, 1.6, 0.3, 0.2, 0.3);
    let kind = SchedulerKind::rumr_known_error(0.3);
    c.bench_function("trace_mode/full_validated", |b| {
        let mut runner = scenario.runner(SimConfig {
            trace_mode: TraceMode::Full,
            ..Default::default()
        });
        let proto = runner.prototype(&kind).expect("planner accepts Table 1");
        let spec = RunSpec::new(kind)
            .config(SimConfig {
                trace_mode: TraceMode::Full,
                ..Default::default()
            })
            .with_prototype(proto);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let result = runner.execute_at(&spec, seed).unwrap();
            let trace = result.trace.as_ref().expect("full mode records");
            assert!(trace.validate(20).is_empty());
            black_box(rumr::TraceMetrics::from_trace(trace, 20).link_utilization)
        })
    });
}

criterion_group!(benches, bench_trace_modes, bench_full_with_consumers);
criterion_main!(benches);
