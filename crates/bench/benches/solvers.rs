//! Planner microbenchmarks.
//!
//! The paper reports that the UMR optimization "can be solved numerically
//! by bisection (requiring about 0.07 seconds on a 400MHz PIII)". These
//! benches measure both of our solver paths, the MI linear system and the
//! heterogeneous planner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dls_sched::{phase_split, HetUmrSchedule, MiSchedule, RumrConfig, UmrInputs, UmrSchedule};
use dls_sim::{HomogeneousParams, Platform, WorkerSpec};

fn table1_inputs(n: usize) -> UmrInputs {
    let platform = HomogeneousParams::table1(n, 1.6, 0.3, 0.2).build().unwrap();
    UmrInputs::from_platform(&platform, 1000.0).unwrap()
}

fn bench_umr_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("umr_solve");
    for n in [10usize, 50] {
        let inputs = table1_inputs(n);
        group.bench_with_input(BenchmarkId::new("integer_scan", n), &inputs, |b, i| {
            b.iter(|| UmrSchedule::solve(black_box(*i)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lagrange", n), &inputs, |b, i| {
            b.iter(|| UmrSchedule::solve_lagrange(black_box(*i)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("with_selection", n), &inputs, |b, i| {
            b.iter(|| UmrSchedule::solve_with_selection(black_box(*i)).unwrap())
        });
    }
    group.finish();
}

fn bench_mi_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("mi_solve");
    let platform = HomogeneousParams::table1(20, 1.6, 0.0, 0.0)
        .build()
        .unwrap();
    for x in 1..=4usize {
        group.bench_with_input(BenchmarkId::from_parameter(x), &x, |b, &x| {
            b.iter(|| MiSchedule::solve(black_box(&platform), 1000.0, x).unwrap())
        });
    }
    group.finish();
}

fn bench_het_solver(c: &mut Criterion) {
    let workers: Vec<WorkerSpec> = (0..16)
        .map(|i| WorkerSpec {
            speed: 1.0 + (i % 4) as f64,
            bandwidth: 20.0 + 5.0 * (i % 3) as f64,
            comp_latency: 0.1 * (i % 5) as f64,
            net_latency: 0.05 * (i % 3) as f64,
            transfer_latency: 0.0,
        })
        .collect();
    let platform = Platform::new(workers).unwrap();
    c.bench_function("het_umr_solve_with_selection", |b| {
        b.iter(|| HetUmrSchedule::solve_with_selection(black_box(&platform), 1000.0).unwrap())
    });
}

fn bench_phase_split(c: &mut Criterion) {
    let cfg = RumrConfig::with_known_error(0.3);
    c.bench_function("rumr_phase_split", |b| {
        b.iter(|| phase_split(black_box(1000.0), 20, 0.3, 0.2, &cfg))
    });
}

criterion_group!(
    benches,
    bench_umr_solvers,
    bench_mi_solver,
    bench_het_solver,
    bench_phase_split
);
criterion_main!(benches);
