//! Benchmark support crate.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `solvers` — planner microbenches (UMR Lagrange vs integer scan, the
//!   MI linear system, heterogeneous UMR, the RUMR phase split). The paper
//!   reports ~0.07 s for the UMR solve on a 400 MHz PIII; these benches
//!   measure our implementation.
//! * `sim_engine` — discrete-event engine throughput per scheduler.
//! * `tables` — regenerates Tables 2 and 3 on a reduced grid and measures
//!   the harness cost per cell.
//! * `figures` — same for Figures 4(a), 4(b), 5, 6 and 7.
//!
//! This library only hosts small shared helpers for those benches.

use dls_experiments::{ErrorModelKind, SweepConfig, Table1Grid};
use rumr::{QueueBackend, SpeedModel, TraceMode};

/// A deliberately small sweep configuration so each bench iteration stays
/// in the millisecond range: 4 platform points, 3 error values, 2 reps.
pub fn bench_sweep_config() -> SweepConfig {
    SweepConfig {
        grid: Table1Grid {
            n_values: vec![10, 20],
            ratio_values: vec![1.5],
            clat_values: vec![0.2, 0.6],
            nlat_values: vec![0.2],
        },
        errors: vec![0.04, 0.24, 0.44],
        reps: 2,
        root_seed: 7,
        threads: 1,
        model: ErrorModelKind::Normal,
        w_total: 1000.0,
        progress: false,
        trace_mode: TraceMode::Off,
        queue_backend: QueueBackend::default(),
        speeds: SpeedModel::Declared,
        audit: false,
    }
}
