//! Keep-alive, pipelining, response-cache and shard-affinity tests
//! against a real listening server.
//!
//! The load-bearing contract: a response's *body* is byte-identical
//! whether the request arrived on a fresh connection, a reused keep-alive
//! connection, or pipelined behind another request — and whether it was
//! computed by an engine shard or served from the response cache.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dls_serve::{Server, ServerConfig};

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_bound: 64,
        cache_capacity: 16,
        sim_cache_capacity: 16,
        shards: 2,
        keep_alive_timeout_ms: 2_000,
        max_events: 10_000_000,
        handler_delay_ms: 0,
        job_capacity: 8,
        ..ServerConfig::default()
    }
}

const PLAN: &str = r#"{"platform": {"homogeneous": {"n": 8, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "scheduler": {"kind": "umr"}, "w_total": 1000}"#;

const SIMULATE: &str = r#"{"platform": {"homogeneous": {"n": 8, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "error_model": {"kind": "normal", "error": 0.3},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 7, "reps": 2}}"#;

fn request_head(method: &str, path: &str, body_len: usize, close: bool) -> String {
    let connection = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {body_len}\r\n{connection}\r\n"
    )
}

fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    stream
        .write_all(request_head(method, path, body.len(), close).as_bytes())
        .unwrap();
    stream.write_all(body.as_bytes()).unwrap();
}

/// Read exactly one `Content-Length`-framed response off the stream.
/// `carry` holds bytes already read past the previous response (pipelined
/// responses arrive back-to-back); on return it holds the bytes past this
/// one.
fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("utf8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length: usize = head
        .split("\r\n")
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header");
    let total = head_end + 4 + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end + 4..total].to_vec()).expect("utf8 body");
    carry.extend_from_slice(&buf[total..]);
    (status, head, body)
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// One close-per-request exchange (the baseline the keep-alive responses
/// are compared against).
fn close_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = connect(addr);
    send(&mut stream, method, path, body, true);
    let mut carry = Vec::new();
    let response = read_framed(&mut stream, &mut carry);
    // The server promised to close: no trailing bytes, then EOF.
    assert!(carry.is_empty(), "unsolicited bytes after the response");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    response
}

#[test]
fn sequential_keep_alive_matches_close_per_request() {
    let server = Server::start(config()).expect("server binds");
    let addr = server.addr;

    // Baselines on dedicated connections.
    let (_, _, plan_baseline) = close_request(addr, "POST", "/plan", PLAN);
    let (_, _, sim_baseline) = close_request(addr, "POST", "/simulate", SIMULATE);
    let (_, _, health_baseline) = close_request(addr, "GET", "/healthz", "");

    // The same three requests over ONE connection.
    let mut stream = connect(addr);
    let mut carry = Vec::new();
    for (method, path, body, baseline) in [
        ("POST", "/plan", PLAN, &plan_baseline),
        ("POST", "/simulate", SIMULATE, &sim_baseline),
        ("GET", "/healthz", "", &health_baseline),
    ] {
        send(&mut stream, method, path, body, false);
        let (status, head, got) = read_framed(&mut stream, &mut carry);
        assert_eq!(status, 200, "{path}: {got}");
        assert!(
            head.contains("Connection: keep-alive"),
            "{path} head: {head}"
        );
        assert_eq!(&got, baseline, "{path}: keep-alive body differs");
    }

    // Opting out mid-connection is honored.
    send(&mut stream, "GET", "/healthz", "", true);
    let (status, head, _) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "head: {head}");
    assert!(carry.is_empty(), "unsolicited bytes after the response");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after Connection: close");
    server.shutdown();
}

#[test]
fn pipelined_requests_get_in_order_byte_identical_responses() {
    let server = Server::start(config()).expect("server binds");
    let addr = server.addr;
    let (_, _, sim_baseline) = close_request(addr, "POST", "/simulate", SIMULATE);
    let (_, _, plan_baseline) = close_request(addr, "POST", "/plan", PLAN);

    // Three requests written back-to-back before reading anything.
    let mut stream = connect(addr);
    let mut wire = Vec::new();
    for (method, path, body) in [
        ("POST", "/simulate", SIMULATE),
        ("POST", "/plan", PLAN),
        ("POST", "/simulate", SIMULATE),
    ] {
        wire.extend_from_slice(request_head(method, path, body.len(), false).as_bytes());
        wire.extend_from_slice(body.as_bytes());
    }
    stream.write_all(&wire).unwrap();

    // Responses come back in request order, each correctly framed; one
    // carry threads the reads because the framed responses arrive
    // back-to-back on the wire.
    let mut carry = Vec::new();
    let (status, _, first) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200, "{first}");
    assert_eq!(first, sim_baseline);
    let (status, _, second) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200, "{second}");
    assert_eq!(second, plan_baseline);
    let (status, _, third) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200, "{third}");
    assert_eq!(third, sim_baseline);
    assert!(carry.is_empty(), "bytes beyond the third response");
    server.shutdown();
}

#[test]
fn malformed_second_request_answers_then_closes() {
    let server = Server::start(config()).expect("server binds");
    let mut stream = connect(server.addr);

    let mut carry = Vec::new();
    send(&mut stream, "GET", "/healthz", "", false);
    let (status, _, body) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    // A request line with no target: framing can no longer be trusted, so
    // the server must answer 400 with Connection: close and drop the
    // connection.
    stream.write_all(b"BOGUS\r\n\r\n").unwrap();
    let (status, head, body) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 400, "{body}");
    assert!(head.contains("Connection: close"), "head: {head}");
    assert!(body.contains("\"error\""));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must be closed after a 400");
    server.shutdown();
}

#[test]
fn response_cache_serves_byte_identical_hits_across_connections() {
    let server = Server::start(config()).expect("server binds");
    let addr = server.addr;

    // Three connections, same request: first computes (miss), the rest
    // are served from the response cache — byte-identical, flagged, and
    // counted, regardless of which worker/shard pair handled the miss.
    let (status, head, first) = close_request(addr, "POST", "/simulate", SIMULATE);
    assert_eq!(status, 200, "{first}");
    assert!(head.contains("X-Sim-Cache: miss"), "head: {head}");
    for _ in 0..2 {
        let (status, head, body) = close_request(addr, "POST", "/simulate", SIMULATE);
        assert_eq!(status, 200);
        assert!(head.contains("X-Sim-Cache: hit"), "head: {head}");
        assert_eq!(body, first, "cache hit must be byte-identical");
    }
    assert_eq!(server.metrics().sim_cache_hits(), 2);

    // The counters are on /metrics too.
    let (_, _, metrics) = close_request(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("dls_serve_sim_cache_hits_total 2"),
        "{metrics}"
    );
    assert!(metrics.contains("dls_serve_sim_cache_evictions_total 0"));
    server.shutdown();
}

#[test]
fn same_scenario_requests_route_to_one_shard() {
    // Cache off so every request actually reaches a shard; 4 shards so a
    // spread would be visible.
    let server = Server::start(ServerConfig {
        sim_cache_capacity: 0,
        shards: 4,
        ..config()
    })
    .expect("server binds");
    let addr = server.addr;

    // Five same-scenario requests (different seeds — affinity is by
    // scenario, not by run spec) from five different connections.
    for seed in 0..5 {
        let body = SIMULATE.replace("\"seed\": 7", &format!("\"seed\": {seed}"));
        let (status, _, response) = close_request(addr, "POST", "/simulate", &body);
        assert_eq!(status, 200, "{response}");
    }
    let by_shard = server.metrics().shard_requests();
    assert_eq!(
        by_shard.len(),
        1,
        "same scenario must always route to one shard: {by_shard:?}"
    );
    assert_eq!(by_shard.values().sum::<u64>(), 5);

    let (_, _, metrics) = close_request(addr, "GET", "/metrics", "");
    let shard = by_shard.keys().next().unwrap();
    assert!(
        metrics.contains(&format!(
            "dls_serve_shard_requests_total{{shard=\"{shard}\"}} 5"
        )),
        "{metrics}"
    );
    server.shutdown();
}
