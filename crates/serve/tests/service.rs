//! End-to-end tests against a real listening server (ephemeral ports,
//! plain `TcpStream` client).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dls_serve::{Server, ServerConfig};

fn start(config: ServerConfig) -> dls_serve::server::ServerHandle {
    Server::start(config).expect("server binds")
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_bound: 64,
        cache_capacity: 16,
        // Response cache off here so these tests exercise the engine path
        // every time; tests/keepalive.rs covers the cache explicitly.
        sim_cache_capacity: 0,
        shards: 2,
        keep_alive_timeout_ms: 2_000,
        max_events: 10_000_000,
        handler_delay_ms: 0,
        job_capacity: 8,
        ..ServerConfig::default()
    }
}

fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).expect("utf8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, body) = text.split_once("\r\n\r\n").expect("blank line");
    (status, head.to_string(), body.to_string())
}

const PLAN: &str = r#"{"platform": {"homogeneous": {"n": 8, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "scheduler": {"kind": "umr"}, "w_total": 1000}"#;

const SIMULATE: &str = r#"{"platform": {"homogeneous": {"n": 8, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "error_model": {"kind": "normal", "error": 0.3},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 7, "reps": 2}}"#;

#[test]
fn healthz_and_metrics_respond() {
    let server = start(quiet_config());
    let (status, _, body) = request(server.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    let (status, _, body) = request(server.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("dls_serve_plan_cache_hits_total"));
    assert!(body.contains("dls_serve_queue_depth"));
    server.shutdown();
}

#[test]
fn plan_caches_and_reports_hits() {
    let server = start(quiet_config());
    let (status, head, first) = request(server.addr, "POST", "/plan", PLAN);
    assert_eq!(status, 200, "body: {first}");
    assert!(head.contains("X-Plan-Cache: miss"));
    assert!(first.contains("\"schedule\""));
    assert!(first.contains("\"predicted\""));

    // Same plan, different field order: cache hit, identical body.
    let reordered = r#"{"w_total": 1000, "scheduler": {"kind": "umr"},
        "platform": {"homogeneous": {"ratio": 1.5, "n": 8,
        "net_latency": 0.1, "comp_latency": 0.2}}}"#;
    let (status, head, second) = request(server.addr, "POST", "/plan", reordered);
    assert_eq!(status, 200);
    assert!(head.contains("X-Plan-Cache: hit"), "head: {head}");
    assert_eq!(first, second);
    assert_eq!(server.metrics().cache_hits(), 1);
    server.shutdown();
}

#[test]
fn simulate_is_deterministic_per_seed() {
    let server = start(quiet_config());
    let (status, _, first) = request(server.addr, "POST", "/simulate", SIMULATE);
    assert_eq!(status, 200, "body: {first}");
    assert!(first.contains("\"mean_makespan\""));
    assert!(first.contains("\"audit_findings\":[]"), "body: {first}");

    let (status, _, second) = request(server.addr, "POST", "/simulate", SIMULATE);
    assert_eq!(status, 200);
    assert_eq!(first, second, "same request must be byte-identical");

    // Priming the plan cache and re-simulating must not change the bytes:
    // a prototype-served run is pinned equal to a fresh solve.
    let plan = SIMULATE.replace(
        r#""error_model": {"kind": "normal", "error": 0.3},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 7, "reps": 2}"#,
        r#""scheduler": {"kind": "rumr", "error_estimate": 0.3}"#,
    );
    let (status, _, _) = request(server.addr, "POST", "/plan", &plan);
    assert_eq!(status, 200);
    let (status, _, third) = request(server.addr, "POST", "/simulate", SIMULATE);
    assert_eq!(status, 200);
    assert_eq!(first, third, "cached prototype changed the simulation");

    // A different seed must change the body.
    let different = SIMULATE.replace("\"seed\": 7", "\"seed\": 8");
    let (status, _, other) = request(server.addr, "POST", "/simulate", &different);
    assert_eq!(status, 200);
    assert_ne!(first, other);
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx() {
    let server = start(quiet_config());
    let cases = [
        ("POST", "/plan", "{not json", 400),
        ("POST", "/plan", "{}", 400),
        (
            "POST",
            "/plan",
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.2, "net_latency": 0.1}},
                "scheduler": {"kind": "warp"}, "w_total": 100}"#,
            400,
        ),
        ("POST", "/simulate", "[]", 400),
        ("GET", "/plan", "", 405),
        ("POST", "/healthz", "", 405),
        ("GET", "/nope", "", 404),
    ];
    for (method, path, body, expected) in cases {
        let (status, _, response) = request(server.addr, method, path, body);
        assert_eq!(status, expected, "{method} {path}: {response}");
        assert!(
            response.contains("\"error\""),
            "{method} {path}: {response}"
        );
    }
    server.shutdown();
}

#[test]
fn full_queue_sheds_load_with_503() {
    // One worker, queue bound 1, slow handler: concurrent requests must
    // overflow the queue and get 503 + Retry-After from the acceptor.
    let server = start(ServerConfig {
        workers: 1,
        queue_bound: 1,
        handler_delay_ms: 300,
        ..quiet_config()
    });
    let addr = server.addr;
    let results: Vec<(u16, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || request(addr, "GET", "/healthz", "")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let statuses: Vec<u16> = results.iter().map(|r| r.0).collect();
    let n503 = statuses.iter().filter(|&&s| s == 503).count();
    let n200 = statuses.iter().filter(|&&s| s == 200).count();
    assert!(n503 >= 1, "expected backpressure, got {statuses:?}");
    assert!(
        n200 >= 1,
        "some requests should still succeed: {statuses:?}"
    );
    assert_eq!(server.metrics().rejected_total(), n503 as u64);

    // Every rejection carries a Retry-After header.
    for (status, head, _) in &results {
        if *status == 503 {
            assert!(
                head.contains("Retry-After:"),
                "503 without Retry-After: {head}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn non_finite_numbers_map_to_422() {
    let server = start(quiet_config());
    // `1e999` is syntactically valid JSON but overflows f64 to infinity;
    // it must be rejected as unprocessable wherever it appears.
    let cases = [
        (
            "/plan",
            PLAN.replace("\"w_total\": 1000", "\"w_total\": 1e999"),
        ),
        ("/plan", PLAN.replace("1.5", "1e999")),
        (
            "/simulate",
            SIMULATE.replace("\"w_total\": 1000", "\"w_total\": -1e999"),
        ),
        ("/simulate", SIMULATE.replace("0.3", "1e999")),
    ];
    for (path, body) in cases {
        let (status, _, response) = request(server.addr, "POST", path, &body);
        assert_eq!(status, 422, "{path} {body}: {response}");
        assert!(response.contains("\"error\""), "{path}: {response}");
    }
    // NaN/Infinity literals are not JSON at all — still a plain 400.
    let (status, _, _) = request(
        server.addr,
        "POST",
        "/plan",
        &PLAN.replace("\"w_total\": 1000", "\"w_total\": NaN"),
    );
    assert_eq!(status, 400);
    let (status, _, _) = request(server.addr, "POST", "/plan", "{not json");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn plan_reports_robustness_floors() {
    let server = start(quiet_config());
    let (status, _, body) = request(server.addr, "POST", "/plan", PLAN);
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"robustness\":{\"analytic_lower_bound\":"));
    assert!(body.contains("\"worst_case\":["));
    assert!(body.contains("adversarial(fraction=0.25,slowdown=1.5)"));
    assert!(body.contains("adversarial(fraction=0.25,slowdown=2)"));
    server.shutdown();
}

#[test]
fn simulate_reports_robustness_under_revealed_speeds() {
    let server = start(quiet_config());
    // No speed block: no robustness section.
    let (status, _, plain) = request(server.addr, "POST", "/simulate", SIMULATE);
    assert_eq!(status, 200, "body: {plain}");
    assert!(!plain.contains("\"robustness\""));

    let revealed = SIMULATE.replace(
        "\"error_model\"",
        r#""speeds": {"kind": "adversarial", "fraction": 0.25, "slowdown": 2.0},
        "error_model""#,
    );
    let (status, _, body) = request(server.addr, "POST", "/simulate", &revealed);
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"robustness\":{\"ratio\":"), "body: {body}");
    assert!(body.contains("\"clairvoyant_makespan\""));
    assert!(body.contains("\"audit_findings\":[]"), "body: {body}");
    // Every reported ratio must be >= 1.
    for piece in body.split("\"ratio\":").skip(1) {
        let ratio: f64 = piece
            .split(&[',', '}'][..])
            .next()
            .unwrap()
            .parse()
            .expect("ratio is a number");
        assert!(ratio >= 1.0 - 1e-9, "ratio {ratio} in {body}");
    }
    server.shutdown();
}

const JOBS: &str = r#"{"platform": {"homogeneous": {"n": 6, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "policy": "fair_share", "seed": 5,
    "jobs": [
      {"release": 0, "size": 400, "scheduler": {"kind": "factoring"}},
      {"release": 30, "size": 200, "scheduler": {"kind": "factoring"}},
      {"release": 60, "size": 100, "scheduler": {"kind": "umr"}}
    ]}"#;

#[test]
fn jobs_submit_poll_result_lifecycle() {
    let server = start(quiet_config());
    let (status, head, body) = request(server.addr, "POST", "/jobs", JOBS);
    assert_eq!(status, 202, "body: {body}");
    assert!(head.contains("Location: /jobs/0"), "head: {head}");
    assert!(body.contains("\"id\":0"));

    // Poll until the runner thread finishes it.
    let mut result = String::new();
    for _ in 0..400 {
        let (status, _, body) = request(server.addr, "GET", "/jobs/0", "");
        assert_eq!(status, 200, "body: {body}");
        if body.contains("\"status\":\"done\"") {
            result = body;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!result.is_empty(), "job never finished");
    assert!(result.contains("\"policy\":\"fair_share\""), "{result}");
    assert!(result.contains("\"fairness\""), "{result}");
    assert!(result.contains("\"stretch\""), "{result}");
    assert!(result.contains("\"audit_findings\":[]"), "{result}");

    // Polls of a finished job are byte-identical.
    let (_, _, again) = request(server.addr, "GET", "/jobs/0", "");
    assert_eq!(result, again);

    let (status, _, list) = request(server.addr, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert!(list.contains("{\"id\":0,\"status\":\"done\"}"), "{list}");

    let (status, _, _) = request(server.addr, "GET", "/jobs/99", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(server.addr, "GET", "/jobs/abc", "");
    assert_eq!(status, 400);
    let (status, _, _) = request(server.addr, "DELETE", "/jobs/0", "");
    assert_eq!(status, 405);
    let (status, _, _) = request(server.addr, "POST", "/jobs", "{}");
    assert_eq!(status, 400);
    let (status, _, _) = request(
        server.addr,
        "POST",
        "/jobs",
        &JOBS.replace("\"size\": 400", "\"size\": 1e999"),
    );
    assert_eq!(status, 422);
    server.shutdown();
}

#[test]
fn jobs_table_full_sheds_load_with_503() {
    let server = start(ServerConfig {
        job_capacity: 0,
        ..quiet_config()
    });
    let (status, head, _) = request(server.addr, "POST", "/jobs", JOBS);
    assert_eq!(status, 503);
    assert!(head.contains("Retry-After:"), "head: {head}");
    server.shutdown();
}

#[test]
fn event_limit_maps_to_422() {
    let server = start(ServerConfig {
        max_events: 50, // far below what any real run needs
        ..quiet_config()
    });
    let (status, _, body) = request(server.addr, "POST", "/simulate", SIMULATE);
    assert_eq!(status, 422, "body: {body}");
    assert!(body.contains("event limit"));
    server.shutdown();
}

/// An error-free, declared-speed, default-transport run of a scheduler
/// with an exact oracle: the analytic fast path answers it.
const ELIGIBLE_SIMULATE: &str = r#"{"platform": {"homogeneous": {"n": 8, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "run": {"scheduler": {"kind": "umr"}, "seed": 3, "reps": 2}}"#;

#[test]
fn v1_aliases_and_version_markers() {
    let server = start(quiet_config());
    // Every endpoint answers identically under the /v1 prefix, and every
    // response carries the X-API-Version header.
    let (status, head, body) = request(server.addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(head.contains("X-API-Version: v1"), "head: {head}");
    assert_eq!(body, "ok\n");

    let (s1, _, unversioned) = request(server.addr, "POST", "/plan", PLAN);
    let (s2, head, versioned) = request(server.addr, "POST", "/v1/plan", PLAN);
    assert_eq!((s1, s2), (200, 200), "bodies: {unversioned} / {versioned}");
    assert_eq!(unversioned, versioned, "aliases must serve the same bytes");
    assert!(head.contains("X-API-Version: v1"), "head: {head}");
    // The prefix is stripped before the cache, so aliases share keys.
    assert_eq!(server.metrics().cache_hits(), 1);
    assert!(versioned.contains("\"api_version\":\"v1\""), "{versioned}");

    let (status, _, sim) = request(server.addr, "POST", "/v1/simulate", SIMULATE);
    assert_eq!(status, 200, "body: {sim}");
    assert!(sim.contains("\"api_version\":\"v1\""), "{sim}");

    let (status, _, jobs) = request(server.addr, "GET", "/v1/jobs", "");
    assert_eq!(status, 200);
    assert!(jobs.contains("\"api_version\":\"v1\""), "{jobs}");

    // Errors carry both markers as well.
    let (status, head, err) = request(server.addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    assert!(head.contains("X-API-Version: v1"), "head: {head}");
    assert!(err.contains("\"api_version\":\"v1\""), "{err}");
    server.shutdown();
}

#[test]
fn errors_use_the_unified_payload_shape() {
    let server = start(quiet_config());
    let non_finite = SIMULATE.replace("\"w_total\": 1000", "\"w_total\": 1e999");
    let cases: [(&str, &str, &str, u16, &str); 5] = [
        ("POST", "/plan", "{not json", 400, "bad_request"),
        ("GET", "/plan", "", 405, "method_not_allowed"),
        ("GET", "/nope", "", 404, "not_found"),
        ("POST", "/simulate", &non_finite, 422, "unprocessable"),
        ("GET", "/jobs/99", "", 404, "not_found"),
    ];
    for (method, path, body, expected, code) in cases {
        let (status, _, response) = request(server.addr, method, path, body);
        assert_eq!(status, expected, "{method} {path}: {response}");
        assert!(
            response.starts_with("{\"api_version\":\"v1\",\"code\":\""),
            "{method} {path}: {response}"
        );
        assert!(
            response.contains(&format!("\"code\":\"{code}\"")),
            "{method} {path}: {response}"
        );
        assert!(
            response.contains("\"error\":\""),
            "{method} {path}: {response}"
        );
        assert!(
            response.contains("\"detail\":null"),
            "{method} {path}: {response}"
        );
    }
    // Shed-load 503s (acceptor and job table) share the shape; the job
    // table is the easy one to force deterministically.
    let full = start(ServerConfig {
        job_capacity: 0,
        ..quiet_config()
    });
    let (status, _, response) = request(full.addr, "POST", "/jobs", JOBS);
    assert_eq!(status, 503);
    assert!(
        response.starts_with("{\"api_version\":\"v1\",\"code\":\"unavailable\""),
        "{response}"
    );
    full.shutdown();
    server.shutdown();
}

#[test]
fn fastpath_answers_eligible_requests_analytically() {
    let server = start(ServerConfig {
        fastpath_audit_pct: 100,
        ..quiet_config()
    });
    // Eligible /simulate: analytic source, one run per requested seed.
    let (status, head, body) = request(server.addr, "POST", "/simulate", ELIGIBLE_SIMULATE);
    assert_eq!(status, 200, "body: {body}");
    assert!(head.contains("X-Answer-Source: analytic"), "head: {head}");
    assert!(body.contains("\"source\":\"analytic\""), "{body}");
    assert!(body.contains("\"seed\":3"), "{body}");
    assert!(body.contains("\"seed\":4"), "{body}");
    assert!(body.contains("\"mean_makespan\""), "{body}");

    // /plan of a scheduler with an exact oracle: analytic, with the
    // oracle's round timeline in place of the per-event schedule.
    let (status, head, plan) = request(server.addr, "POST", "/plan", PLAN);
    assert_eq!(status, 200, "body: {plan}");
    assert!(head.contains("X-Answer-Source: analytic"), "head: {head}");
    assert!(plan.contains("\"source\":\"analytic\""), "{plan}");
    assert!(plan.contains("\"schedule\":[]"), "{plan}");
    assert!(plan.contains("\"rounds\":[{\"round\":0"), "{plan}");
    assert!(plan.contains("\"predicted\":{\"kind\":\"exact\""), "{plan}");

    // Cache hits replay the analytic source marker.
    let (_, head, _) = request(server.addr, "POST", "/plan", PLAN);
    assert!(head.contains("X-Plan-Cache: hit"), "head: {head}");
    assert!(head.contains("X-Answer-Source: analytic"), "head: {head}");

    // The noisy RUMR request is ineligible and stays on the engine path.
    let (status, head, body) = request(server.addr, "POST", "/simulate", SIMULATE);
    assert_eq!(status, 200, "body: {body}");
    assert!(head.contains("X-Answer-Source: engine"), "head: {head}");
    assert!(body.contains("\"source\":\"engine\""), "{body}");

    // 100% sampling audited both analytic answers, and the engine agreed
    // with the closed forms every time.
    let m = server.metrics();
    assert_eq!(m.fastpath_analytic_total(), 2);
    assert_eq!(m.fastpath_audited_total(), 2);
    assert_eq!(
        m.fastpath_divergences_total(),
        0,
        "engine disagreed with oracle"
    );
    assert!(m.fastpath_engine_total() >= 1);

    let (_, _, metrics) = request(server.addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("dls_serve_fastpath_analytic_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dls_serve_fastpath_divergence_total 0"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn fastpath_audit_sampling_zero_disables_the_audit() {
    let server = start(ServerConfig {
        fastpath_audit_pct: 0,
        ..quiet_config()
    });
    let (status, _, body) = request(server.addr, "POST", "/simulate", ELIGIBLE_SIMULATE);
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(server.metrics().fastpath_analytic_total(), 1);
    assert_eq!(server.metrics().fastpath_audited_total(), 0);
    server.shutdown();
}

#[test]
fn fastpath_divergence_injection_fires_the_counter() {
    // The test hook perturbs every audited engine re-run, proving a real
    // disagreement would be caught and counted — the CI gate greps this
    // counter at 100% sampling.
    let server = start(ServerConfig {
        fastpath_audit_pct: 100,
        fastpath_divergence_inject: true,
        ..quiet_config()
    });
    let (status, _, _) = request(server.addr, "POST", "/simulate", ELIGIBLE_SIMULATE);
    assert_eq!(status, 200);
    let (status, _, _) = request(server.addr, "POST", "/plan", PLAN);
    assert_eq!(status, 200);
    let m = server.metrics();
    assert_eq!(m.fastpath_audited_total(), 2);
    assert_eq!(m.fastpath_divergences_total(), 2);
    let (_, _, metrics) = request(server.addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("dls_serve_fastpath_divergence_total 2"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn fastpath_analytic_answer_matches_the_engine() {
    // Cross-check over the wire: the analytic makespan for an eligible
    // run must agree with what the engine reports for the same physics
    // when the fast path is sidestepped.
    let server = start(ServerConfig {
        fastpath_audit_pct: 100,
        ..quiet_config()
    });
    let (status, _, analytic) = request(server.addr, "POST", "/simulate", ELIGIBLE_SIMULATE);
    assert_eq!(status, 200, "body: {analytic}");
    let analytic_makespan = extract_num(&analytic, "\"mean_makespan\":");

    // Same scenario with a vanishing error model: engine path (the error
    // model is present, so the fast path declines), same physics.
    let engine_req = ELIGIBLE_SIMULATE.replace(
        "\"w_total\": 1000,",
        "\"w_total\": 1000, \"error_model\": {\"kind\": \"normal\", \"error\": 0.0},",
    );
    let (status, head, engine) = request(server.addr, "POST", "/simulate", &engine_req);
    assert_eq!(status, 200, "body: {engine}");
    assert!(head.contains("X-Answer-Source: engine"), "head: {head}");
    let engine_makespan = extract_num(&engine, "\"mean_makespan\":");
    let rel = (analytic_makespan - engine_makespan).abs() / engine_makespan;
    assert!(
        rel < 1e-6,
        "analytic {analytic_makespan} vs engine {engine_makespan} (rel {rel})"
    );
    assert_eq!(server.metrics().fastpath_divergences_total(), 0);
    server.shutdown();
}

fn extract_num(body: &str, key: &str) -> f64 {
    body.split(key)
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no {key} in {body}"))
}
