//! Open-loop load generator and acceptance checker for `dls-serve`.
//!
//! Fires a mixed workload (`/plan` repeats to drive cache hits, fixed-seed
//! `/simulate` pairs to check determinism, speed-revelation `/simulate`
//! runs that must report robustness ratios ≥ 1, `/healthz` probes) at a fixed
//! arrival rate; latency is measured from each request's *scheduled* start
//! so queueing shows up rather than being absorbed. Reports p50/p99 and
//! throughput, then verifies the service contract:
//!
//! * zero 5xx responses (503 is only acceptable under `--expect-503`,
//!   which instead *requires* at least one);
//! * identical `/simulate` requests returned byte-identical bodies;
//! * speed-revelation `/simulate` responses carry robustness ratios ≥ 1;
//! * no audit findings in any `/simulate` response;
//! * the plan cache served at least one hit (scraped from `/metrics`).
//!
//! Exit status 0 iff every check passes.
//!
//! Flags: `--addr HOST:PORT` `--requests N` `--threads N` `--rate RPS`
//! `--quick` `--expect-503`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

const PLAN_BODY: &str = r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "scheduler": {"kind": "rumr", "error_estimate": 0.3},
    "w_total": 1000}"#;

const SIM_BODY: &str = r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "error_model": {"kind": "normal", "error": 0.3},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 42}}"#;

/// Speed-revelation scenario: plans on declared rates, executes against an
/// adversary that slows a quarter of the workers 2×. The response must
/// carry per-run robustness reports with ratio ≥ 1.
const SIM_SPEEDS_BODY: &str = r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "error_model": {"kind": "normal", "error": 0.3},
    "speeds": {"kind": "adversarial", "fraction": 0.25, "slowdown": 2.0},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 42}}"#;

struct Outcome {
    latency: f64,
    status: u16,
    kind: usize,
    body: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: load_gen --addr HOST:PORT [--requests N] [--threads N] [--rate RPS] \
         [--quick] [--expect-503]"
    );
    std::process::exit(2)
}

fn main() {
    let mut addr = String::new();
    let mut requests: usize = 200;
    let mut threads: usize = 4;
    let mut rate: f64 = 200.0;
    let mut expect_503 = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => addr = value(&mut i),
            "--requests" => requests = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rate" => rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quick" => {
                requests = 40;
                threads = 4;
                rate = 100.0;
            }
            "--expect-503" => expect_503 = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if addr.is_empty() {
        usage();
    }

    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(requests));
    let errors = AtomicU64::new(0);
    let next: AtomicU64 = AtomicU64::new(0);
    let start = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / rate.max(1.0));

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= requests {
                    return;
                }
                // Open loop: request i is *scheduled* at start + i·interval;
                // latency includes any time it spent waiting to be sent.
                let scheduled = start + interval * i as u32;
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let kind = i % 5;
                let result = match kind {
                    0 | 1 => http_request(&addr, "POST", "/plan", PLAN_BODY),
                    2 => http_request(&addr, "POST", "/simulate", SIM_BODY),
                    3 => http_request(&addr, "POST", "/simulate", SIM_SPEEDS_BODY),
                    _ => http_request(&addr, "GET", "/healthz", ""),
                };
                match result {
                    Ok((status, body)) => outcomes.lock().unwrap().push(Outcome {
                        latency: scheduled.elapsed().as_secs_f64(),
                        status,
                        kind,
                        body,
                    }),
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let outcomes = outcomes.into_inner().unwrap();
    let mut latencies: Vec<f64> = outcomes.iter().map(|o| o.latency).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    println!(
        "load_gen: {} responses in {elapsed:.2}s ({:.1} req/s), p50 {:.1} ms, p99 {:.1} ms",
        outcomes.len(),
        outcomes.len() as f64 / elapsed.max(1e-9),
        pct(0.50) * 1e3,
        pct(0.99) * 1e3,
    );
    let mut by_status: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
    for o in &outcomes {
        *by_status.entry(o.status).or_insert(0) += 1;
    }
    for (status, count) in &by_status {
        println!("  status {status}: {count}");
    }

    // --- Acceptance checks -------------------------------------------------
    let mut failed = false;
    let mut check = |name: &str, ok: bool, detail: String| {
        println!("  [{}] {name}{detail}", if ok { "ok" } else { "FAIL" });
        failed |= !ok;
    };

    let io_errors = errors.load(Ordering::Relaxed);
    check(
        "all requests answered",
        io_errors == 0,
        format!(" ({io_errors} I/O errors)"),
    );

    let n5xx = outcomes
        .iter()
        .filter(|o| o.status >= 500 && o.status != 503)
        .count();
    check("zero 5xx", n5xx == 0, format!(" ({n5xx} seen)"));
    let n503 = outcomes.iter().filter(|o| o.status == 503).count();
    if expect_503 {
        check(
            "503 backpressure observed",
            n503 > 0,
            format!(" ({n503} rejections)"),
        );
    } else {
        check(
            "no 503 under nominal load",
            n503 == 0,
            format!(" ({n503} seen)"),
        );
    }

    let sims: Vec<&Outcome> = outcomes
        .iter()
        .filter(|o| o.kind == 2 && o.status == 200)
        .collect();
    if sims.len() >= 2 {
        let identical = sims.windows(2).all(|w| w[0].body == w[1].body);
        check(
            "identical /simulate requests → byte-identical bodies",
            identical,
            String::new(),
        );
    } else if !expect_503 {
        check(
            "at least two successful /simulate responses",
            false,
            format!(" ({} seen)", sims.len()),
        );
    }
    let speed_sims: Vec<&Outcome> = outcomes
        .iter()
        .filter(|o| o.kind == 3 && o.status == 200)
        .collect();
    if !speed_sims.is_empty() {
        let robust = speed_sims.iter().all(|o| {
            o.body.contains("\"robustness\":{\"ratio\":")
                && o.body.split("\"ratio\":").skip(1).all(|piece| {
                    piece
                        .split(&[',', '}'][..])
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .is_some_and(|r| r >= 1.0 - 1e-9)
                })
        });
        check(
            "speed-revelation runs report robustness ratio >= 1",
            robust,
            String::new(),
        );
    } else if !expect_503 {
        check(
            "at least one successful speed-revelation /simulate",
            false,
            " (0 seen)".to_string(),
        );
    }

    let clean_audit = sims
        .iter()
        .chain(&speed_sims)
        .all(|o| o.body.contains("\"audit_findings\":[]"));
    check("no audit findings", clean_audit, String::new());

    match http_request(&addr, "GET", "/metrics", "") {
        Ok((200, metrics)) => {
            let hits: u64 = metrics
                .lines()
                .find_map(|l| l.strip_prefix("dls_serve_plan_cache_hits_total "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            check(
                "plan cache hit ratio > 0",
                hits > 0,
                format!(" ({hits} hits)"),
            );
        }
        other => check("metrics scrape", false, format!(" ({other:?})")),
    }

    std::process::exit(if failed { 1 } else { 0 });
}
