//! Load generator and acceptance checker for `dls-serve`.
//!
//! Speaks persistent HTTP/1.1 by default (one connection per backend per
//! thread, responses framed by `Content-Length`); `--close` reverts to
//! close-per-request, which is also how you demonstrate 503 backpressure
//! (keep-alive connections occupy workers instead of filling the accept
//! queue). `--addr` takes a comma-separated backend list; requests are
//! routed by a consistent hash of the request body (64 virtual nodes per
//! backend), so identical requests always land on the same process and
//! its caches stay hot.
//!
//! Modes:
//!
//! * default: open-loop mixed workload (`/plan` repeats to drive cache
//!   hits, fixed-seed `/simulate` pairs to check determinism,
//!   speed-revelation `/simulate` runs that must report robustness ratios
//!   ≥ 1, `/healthz` probes) at a fixed arrival rate; latency is measured
//!   from each request's *scheduled* start so queueing shows up rather
//!   than being absorbed. Verifies the service contract (zero unexpected
//!   5xx, byte-identical repeats, clean audits, cache hits on `/metrics`,
//!   cross-process determinism when several backends are given) and, with
//!   `--max-p99-ms`, gates on tail latency.
//! * `--cache-demo`: closed-loop warm-vs-cold `/simulate` throughput on
//!   one backend; passes when the warm (response-cache-served) rate is at
//!   least `--min-speedup` × the cold (unique-seed) rate.
//! * `--scale-demo`: closed-loop unique-seed `/simulate` throughput on
//!   backend 1 alone vs spread over all backends; passes when the
//!   aggregate rate is at least `--min-scale` × the single-process rate.
//!   Run the backends with `--shards 1 --sim-cache 0` so the comparison
//!   measures engine throughput, not cache or intra-process parallelism.
//! * `--fastpath-demo`: closed-loop cache-busting `/plan` throughput on
//!   one backend, analytic fast path (umr) vs engine path (rumr); checks
//!   the `X-Answer-Source` body markers and passes when the analytic rate
//!   is at least `--min-fastpath-speedup` × the engine rate. Run the
//!   backend with `--fastpath-audit-pct 0` for a clean comparison.
//!
//! Exit status 0 iff every check passes.
//!
//! Flags: `--addr HOST:PORT[,HOST:PORT...]` `--requests N` `--threads N`
//! `--rate RPS` `--quick` `--expect-503` `--close` `--max-p99-ms MS`
//! `--cache-demo` `--min-speedup X` `--scale-demo` `--min-scale X`
//! `--fastpath-demo` `--min-fastpath-speedup X` `--demo-requests N`.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Consistent-hash routing
// ---------------------------------------------------------------------------

fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Finalizer: raw FNV has weak avalanche on short, near-identical
    // keys (vnode labels, bodies differing in one seed digit), which
    // skews ring arcs badly.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

const VNODES: u32 = 256;

/// A hash ring over the backend list: 256 virtual nodes per backend, a
/// key routes to the first vnode at or after its hash (wrapping).
fn build_ring(addrs: &[String]) -> Vec<(u64, usize)> {
    let mut ring: Vec<(u64, usize)> = Vec::with_capacity(addrs.len() * VNODES as usize);
    for (i, addr) in addrs.iter().enumerate() {
        for v in 0..VNODES {
            ring.push((fnv1a(format!("{addr}#{v}").as_bytes()), i));
        }
    }
    ring.sort_unstable();
    ring
}

fn route(ring: &[(u64, usize)], key: &[u8]) -> usize {
    let h = fnv1a(key);
    match ring.binary_search_by(|&(v, _)| v.cmp(&h)) {
        Ok(i) => ring[i].1,
        Err(i) if i < ring.len() => ring[i].1,
        Err(_) => ring[0].1,
    }
}

// ---------------------------------------------------------------------------
// HTTP client (keep-alive by default)
// ---------------------------------------------------------------------------

/// A per-thread client holding one persistent connection per backend.
struct Client<'a> {
    addrs: &'a [String],
    conns: Vec<Option<TcpStream>>,
    keep_alive: bool,
}

impl<'a> Client<'a> {
    fn new(addrs: &'a [String], keep_alive: bool) -> Self {
        Client {
            addrs,
            conns: addrs.iter().map(|_| None).collect(),
            keep_alive,
        }
    }

    /// Issue one request to backend `idx`. A failed attempt on a *reused*
    /// connection (the server may have reaped it idle) gets one retry on a
    /// fresh connection; a failure on a fresh connection is reported.
    fn request(
        &mut self,
        idx: usize,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, String)> {
        let reused = self.conns[idx].is_some();
        match self.try_request(idx, method, path, body) {
            Ok(r) => Ok(r),
            Err(e) => {
                self.conns[idx] = None;
                if reused {
                    self.try_request(idx, method, path, body)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn try_request(
        &mut self,
        idx: usize,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, String)> {
        if self.conns[idx].is_none() {
            let stream = TcpStream::connect(&self.addrs[idx])?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_write_timeout(Some(Duration::from_secs(30)))?;
            let _ = stream.set_nodelay(true);
            self.conns[idx] = Some(stream);
        }
        let stream = self.conns[idx].as_mut().expect("just connected");
        let connection = if self.keep_alive {
            ""
        } else {
            "Connection: close\r\n"
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{connection}\r\n",
            self.addrs[idx],
            body.len()
        );
        let result = (|| {
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            read_response(stream)
        })();
        match result {
            Ok((status, body, close)) => {
                if close || !self.keep_alive {
                    self.conns[idx] = None;
                }
                Ok((status, body))
            }
            Err(e) => {
                self.conns[idx] = None;
                Err(e)
            }
        }
    }
}

/// Read one `Content-Length`-framed response; returns (status, body,
/// server asked to close).
fn read_response(stream: &mut TcpStream) -> io::Result<(u16, String, bool)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let total = head_end + 4 + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned();
    Ok((status, body, close))
}

// ---------------------------------------------------------------------------
// Request bodies
// ---------------------------------------------------------------------------

const PLAN_BODY: &str = r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "scheduler": {"kind": "rumr", "error_estimate": 0.3},
    "w_total": 1000}"#;

const SIM_BODY: &str = r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "error_model": {"kind": "normal", "error": 0.3},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 42}}"#;

/// Speed-revelation scenario: plans on declared rates, executes against an
/// adversary that slows a quarter of the workers 2×. The response must
/// carry per-run robustness reports with ratio ≥ 1.
const SIM_SPEEDS_BODY: &str = r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "error_model": {"kind": "normal", "error": 0.3},
    "speeds": {"kind": "adversarial", "fraction": 0.25, "slowdown": 2.0},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 42}}"#;

/// Heavier `/simulate` used by the demos: 3 reps so engine time dominates
/// connection overhead.
const SIM_DEMO_BODY: &str = r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "w_total": 1000,
    "error_model": {"kind": "normal", "error": 0.3},
    "run": {"scheduler": {"kind": "rumr", "error_estimate": 0.3}, "seed": 42, "reps": 3}}"#;

/// Fast-path demo bodies: the same platform and workload, once under a
/// scheduler with an exact oracle (UMR — answered analytically) and once
/// under one without (RUMR — must run the engine with a full trace).
const PLAN_FAST_BODY: &str = r#"{"platform": {"homogeneous": {"n": 32, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "scheduler": {"kind": "umr"},
    "w_total": 200000}"#;

const PLAN_ENGINE_BODY: &str = r#"{"platform": {"homogeneous": {"n": 32, "ratio": 1.5,
    "comp_latency": 0.2, "net_latency": 0.1}},
    "scheduler": {"kind": "rumr", "error_estimate": 0.3},
    "w_total": 200000}"#;

static NEXT_SEED: AtomicU64 = AtomicU64::new(1_000_000);
static NEXT_W: AtomicU64 = AtomicU64::new(0);

/// A plan-cache-busting variant of `body`: a workload nobody has asked
/// for before, so every request reaches the resolver (or the engine)
/// instead of the plan cache.
fn unique_w_body(body: &str) -> String {
    let k = NEXT_W.fetch_add(1, Ordering::Relaxed);
    body.replace(
        "\"w_total\": 200000",
        &format!("\"w_total\": {}", 200_000 + k),
    )
}

/// A cache-busting variant of `body`: a seed nobody has used before, so
/// the canonical request — and therefore the response-cache key — is
/// fresh.
fn unique_seed_body(body: &str) -> String {
    let seed = NEXT_SEED.fetch_add(1, Ordering::Relaxed);
    body.replace("\"seed\": 42", &format!("\"seed\": {seed}"))
}

// ---------------------------------------------------------------------------
// Closed-loop throughput measurement (demo modes)
// ---------------------------------------------------------------------------

/// Run `threads × per_thread` POST requests to `path` as fast as they
/// complete, routing each by its body over `addrs`. Returns (successful
/// responses, elapsed seconds, request failures).
fn closed_loop(
    addrs: &[String],
    keep_alive: bool,
    threads: usize,
    per_thread: usize,
    path: &str,
    make_body: &(dyn Fn() -> String + Sync),
) -> (usize, f64, usize) {
    let ring = build_ring(addrs);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let mut client = Client::new(addrs, keep_alive);
                for _ in 0..per_thread {
                    let body = make_body();
                    let idx = route(&ring, body.as_bytes());
                    match client.request(idx, "POST", path, &body) {
                        Ok((200, _)) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    (
        ok.load(Ordering::Relaxed) as usize,
        start.elapsed().as_secs_f64(),
        failed.load(Ordering::Relaxed) as usize,
    )
}

fn run_cache_demo(
    addrs: &[String],
    keep_alive: bool,
    threads: usize,
    per_thread: usize,
    min_speedup: f64,
) -> bool {
    let one = &addrs[..1];
    let mut client = Client::new(one, keep_alive);
    // Prime the response cache with the warm body.
    if !matches!(
        client.request(0, "POST", "/simulate", SIM_DEMO_BODY),
        Ok((200, _))
    ) {
        println!("  [FAIL] cache demo: priming request failed");
        return false;
    }
    let (warm_ok, warm_secs, warm_err) =
        closed_loop(one, keep_alive, threads, per_thread, "/simulate", &|| {
            SIM_DEMO_BODY.to_string()
        });
    let (cold_ok, cold_secs, cold_err) =
        closed_loop(one, keep_alive, threads, per_thread, "/simulate", &|| {
            unique_seed_body(SIM_DEMO_BODY)
        });
    let warm_rate = warm_ok as f64 / warm_secs.max(1e-9);
    let cold_rate = cold_ok as f64 / cold_secs.max(1e-9);
    let speedup = warm_rate / cold_rate.max(1e-9);
    println!(
        "cache demo: warm {warm_rate:.0} req/s vs cold {cold_rate:.0} req/s → {speedup:.1}x \
         ({warm_err}+{cold_err} failures)"
    );
    let ok = warm_err == 0
        && cold_err == 0
        && warm_ok == threads.max(1) * per_thread
        && speedup >= min_speedup;
    println!(
        "  [{}] warm-cache /simulate throughput >= {min_speedup:.1}x cold",
        if ok { "ok" } else { "FAIL" }
    );
    ok
}

fn run_scale_demo(
    addrs: &[String],
    keep_alive: bool,
    threads: usize,
    per_thread: usize,
    min_scale: f64,
) -> bool {
    if addrs.len() < 2 {
        println!("  [FAIL] scale demo needs at least two --addr backends");
        return false;
    }
    let (single_ok, single_secs, single_err) = closed_loop(
        &addrs[..1],
        keep_alive,
        threads,
        per_thread,
        "/simulate",
        &|| unique_seed_body(SIM_DEMO_BODY),
    );
    let (all_ok, all_secs, all_err) =
        closed_loop(addrs, keep_alive, threads, per_thread, "/simulate", &|| {
            unique_seed_body(SIM_DEMO_BODY)
        });
    let single_rate = single_ok as f64 / single_secs.max(1e-9);
    let all_rate = all_ok as f64 / all_secs.max(1e-9);
    let scale = all_rate / single_rate.max(1e-9);
    println!(
        "scale demo: 1 process {single_rate:.0} req/s vs {} processes {all_rate:.0} req/s → {scale:.2}x \
         ({single_err}+{all_err} failures)",
        addrs.len()
    );
    let ok = single_err == 0 && all_err == 0 && scale >= min_scale;
    println!(
        "  [{}] multi-process /simulate throughput >= {min_scale:.2}x single process",
        if ok { "ok" } else { "FAIL" }
    );
    ok
}

/// Closed-loop analytic-vs-engine `/plan` throughput on one backend.
/// Every body carries a fresh workload so the plan cache never answers;
/// the fast-path (UMR, exact oracle) rate must be at least
/// `min_fastpath_speedup` × the engine-path (RUMR, full trace) rate.
/// Run the backend with `--fastpath-audit-pct 0` for a clean comparison —
/// sampled audits bill engine runs to the analytic side.
fn run_fastpath_demo(
    addrs: &[String],
    keep_alive: bool,
    threads: usize,
    per_thread: usize,
    min_fastpath_speedup: f64,
) -> bool {
    let one = &addrs[..1];
    let mut client = Client::new(one, keep_alive);
    // The source markers must hold before throughput means anything.
    let fast_marked = matches!(
        client.request(0, "POST", "/plan", &unique_w_body(PLAN_FAST_BODY)),
        Ok((200, body)) if body.contains("\"source\":\"analytic\"")
    );
    println!(
        "  [{}] umr /plan answered analytically",
        if fast_marked { "ok" } else { "FAIL" }
    );
    let engine_marked = matches!(
        client.request(0, "POST", "/plan", &unique_w_body(PLAN_ENGINE_BODY)),
        Ok((200, body)) if body.contains("\"source\":\"engine\"")
    );
    println!(
        "  [{}] rumr /plan answered by the engine",
        if engine_marked { "ok" } else { "FAIL" }
    );
    if !(fast_marked && engine_marked) {
        return false;
    }
    let (fast_ok, fast_secs, fast_err) =
        closed_loop(one, keep_alive, threads, per_thread, "/plan", &|| {
            unique_w_body(PLAN_FAST_BODY)
        });
    let (eng_ok, eng_secs, eng_err) =
        closed_loop(one, keep_alive, threads, per_thread, "/plan", &|| {
            unique_w_body(PLAN_ENGINE_BODY)
        });
    let fast_rate = fast_ok as f64 / fast_secs.max(1e-9);
    let eng_rate = eng_ok as f64 / eng_secs.max(1e-9);
    let speedup = fast_rate / eng_rate.max(1e-9);
    println!(
        "fastpath demo: analytic {fast_rate:.0} req/s vs engine {eng_rate:.0} req/s → \
         {speedup:.1}x ({fast_err}+{eng_err} failures)"
    );
    let ok = fast_err == 0
        && eng_err == 0
        && fast_ok == threads.max(1) * per_thread
        && eng_ok == threads.max(1) * per_thread
        && speedup >= min_fastpath_speedup;
    println!(
        "  [{}] analytic /plan throughput >= {min_fastpath_speedup:.1}x engine path",
        if ok { "ok" } else { "FAIL" }
    );
    ok
}

// ---------------------------------------------------------------------------
// Mixed-load mode
// ---------------------------------------------------------------------------

struct Outcome {
    latency: f64,
    status: u16,
    kind: usize,
    body: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: load_gen --addr HOST:PORT[,HOST:PORT...] [--requests N] [--threads N] \
         [--rate RPS] [--quick] [--expect-503] [--close] [--max-p99-ms MS] \
         [--cache-demo] [--min-speedup X] [--scale-demo] [--min-scale X] \
         [--fastpath-demo] [--min-fastpath-speedup X] [--demo-requests N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut addr_arg = String::new();
    let mut requests: usize = 200;
    let mut threads: usize = 4;
    let mut rate: f64 = 200.0;
    let mut expect_503 = false;
    let mut keep_alive = true;
    let mut max_p99_ms: Option<f64> = None;
    let mut cache_demo = false;
    let mut scale_demo = false;
    let mut fastpath_demo = false;
    let mut min_speedup = 2.0;
    let mut min_scale = 1.3;
    let mut min_fastpath_speedup = 5.0;
    let mut demo_requests: usize = 25;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => addr_arg = value(&mut i),
            "--requests" => requests = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rate" => rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quick" => {
                requests = 40;
                threads = 4;
                rate = 100.0;
            }
            "--expect-503" => expect_503 = true,
            "--close" => keep_alive = false,
            "--max-p99-ms" => max_p99_ms = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--cache-demo" => cache_demo = true,
            "--scale-demo" => scale_demo = true,
            "--fastpath-demo" => fastpath_demo = true,
            "--min-speedup" => min_speedup = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--min-scale" => min_scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--min-fastpath-speedup" => {
                min_fastpath_speedup = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--demo-requests" => demo_requests = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    let addrs: Vec<String> = addr_arg
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if addrs.is_empty() {
        usage();
    }

    if cache_demo {
        let ok = run_cache_demo(&addrs, keep_alive, threads, demo_requests, min_speedup);
        std::process::exit(if ok { 0 } else { 1 });
    }
    if scale_demo {
        let ok = run_scale_demo(&addrs, keep_alive, threads, demo_requests, min_scale);
        std::process::exit(if ok { 0 } else { 1 });
    }
    if fastpath_demo {
        let ok = run_fastpath_demo(
            &addrs,
            keep_alive,
            threads,
            demo_requests,
            min_fastpath_speedup,
        );
        std::process::exit(if ok { 0 } else { 1 });
    }

    let ring = build_ring(&addrs);
    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(requests));
    let errors = AtomicU64::new(0);
    let next: AtomicU64 = AtomicU64::new(0);
    let start = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / rate.max(1.0));

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let mut client = Client::new(&addrs, keep_alive);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= requests {
                        return;
                    }
                    // Open loop: request i is *scheduled* at start + i·interval;
                    // latency includes any time it spent waiting to be sent.
                    let scheduled = start + interval * i as u32;
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let kind = i % 5;
                    let (method, path, body) = match kind {
                        0 | 1 => ("POST", "/plan", PLAN_BODY),
                        2 => ("POST", "/simulate", SIM_BODY),
                        3 => ("POST", "/simulate", SIM_SPEEDS_BODY),
                        _ => ("GET", "/healthz", ""),
                    };
                    // Bodied requests route by content (cache affinity);
                    // healthz probes rotate over the backends.
                    let idx = if body.is_empty() {
                        i % addrs.len()
                    } else {
                        route(&ring, body.as_bytes())
                    };
                    match client.request(idx, method, path, body) {
                        Ok((status, body)) => outcomes.lock().unwrap().push(Outcome {
                            latency: scheduled.elapsed().as_secs_f64(),
                            status,
                            kind,
                            body,
                        }),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let outcomes = outcomes.into_inner().unwrap();
    let mut latencies: Vec<f64> = outcomes.iter().map(|o| o.latency).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let p99_ms = pct(0.99) * 1e3;
    println!(
        "load_gen: {} responses in {elapsed:.2}s ({:.1} req/s), p50 {:.1} ms, p99 {p99_ms:.1} ms",
        outcomes.len(),
        outcomes.len() as f64 / elapsed.max(1e-9),
        pct(0.50) * 1e3,
    );
    let mut by_status: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
    for o in &outcomes {
        *by_status.entry(o.status).or_insert(0) += 1;
    }
    for (status, count) in &by_status {
        println!("  status {status}: {count}");
    }

    // --- Acceptance checks -------------------------------------------------
    let mut failed = false;
    let mut check = |name: &str, ok: bool, detail: String| {
        println!("  [{}] {name}{detail}", if ok { "ok" } else { "FAIL" });
        failed |= !ok;
    };

    let io_errors = errors.load(Ordering::Relaxed);
    check(
        "all requests answered",
        io_errors == 0,
        format!(" ({io_errors} I/O errors)"),
    );

    let n5xx = outcomes
        .iter()
        .filter(|o| o.status >= 500 && o.status != 503)
        .count();
    check("zero 5xx", n5xx == 0, format!(" ({n5xx} seen)"));
    let n503 = outcomes.iter().filter(|o| o.status == 503).count();
    if expect_503 {
        check(
            "503 backpressure observed",
            n503 > 0,
            format!(" ({n503} rejections)"),
        );
    } else {
        check(
            "no 503 under nominal load",
            n503 == 0,
            format!(" ({n503} seen)"),
        );
    }

    if let Some(bound) = max_p99_ms {
        check(
            "p99 within bound",
            p99_ms <= bound,
            format!(" ({p99_ms:.1} ms <= {bound:.0} ms)"),
        );
    }

    let sims: Vec<&Outcome> = outcomes
        .iter()
        .filter(|o| o.kind == 2 && o.status == 200)
        .collect();
    if sims.len() >= 2 {
        let identical = sims.windows(2).all(|w| w[0].body == w[1].body);
        check(
            "identical /simulate requests → byte-identical bodies",
            identical,
            String::new(),
        );
    } else if !expect_503 {
        check(
            "at least two successful /simulate responses",
            false,
            format!(" ({} seen)", sims.len()),
        );
    }
    let speed_sims: Vec<&Outcome> = outcomes
        .iter()
        .filter(|o| o.kind == 3 && o.status == 200)
        .collect();
    if !speed_sims.is_empty() {
        let robust = speed_sims.iter().all(|o| {
            o.body.contains("\"robustness\":{\"ratio\":")
                && o.body.split("\"ratio\":").skip(1).all(|piece| {
                    piece
                        .split(&[',', '}'][..])
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .is_some_and(|r| r >= 1.0 - 1e-9)
                })
        });
        check(
            "speed-revelation runs report robustness ratio >= 1",
            robust,
            String::new(),
        );
    } else if !expect_503 {
        check(
            "at least one successful speed-revelation /simulate",
            false,
            " (0 seen)".to_string(),
        );
    }

    let clean_audit = sims
        .iter()
        .chain(&speed_sims)
        .all(|o| o.body.contains("\"audit_findings\":[]"));
    check("no audit findings", clean_audit, String::new());

    // Cross-process determinism: every backend must produce the same bytes
    // for the same fixed-seed request.
    if addrs.len() >= 2 {
        let mut probe = Client::new(&addrs, keep_alive);
        let bodies: Vec<Option<String>> = (0..addrs.len())
            .map(
                |idx| match probe.request(idx, "POST", "/simulate", SIM_BODY) {
                    Ok((200, body)) => Some(body),
                    _ => None,
                },
            )
            .collect();
        let all_ok = bodies.iter().all(Option::is_some);
        let identical = all_ok && bodies.windows(2).all(|w| w[0] == w[1]);
        check(
            "same request → byte-identical bodies across processes",
            identical,
            String::new(),
        );
    }

    // Metrics scrape, summed over every backend.
    let mut probe = Client::new(&addrs, keep_alive);
    let mut plan_hits = 0u64;
    let mut sim_hits = 0u64;
    let mut sim_misses = 0u64;
    let mut scrape_ok = true;
    for idx in 0..addrs.len() {
        match probe.request(idx, "GET", "/metrics", "") {
            Ok((200, metrics)) => {
                let grab = |prefix: &str| -> u64 {
                    metrics
                        .lines()
                        .find_map(|l| l.strip_prefix(prefix))
                        .and_then(|v| v.trim().parse().ok())
                        .unwrap_or(0)
                };
                plan_hits += grab("dls_serve_plan_cache_hits_total ");
                sim_hits += grab("dls_serve_sim_cache_hits_total ");
                sim_misses += grab("dls_serve_sim_cache_misses_total ");
            }
            _ => scrape_ok = false,
        }
    }
    check("metrics scrape", scrape_ok, String::new());
    check(
        "plan cache hit ratio > 0",
        plan_hits > 0,
        format!(" ({plan_hits} hits)"),
    );
    // Only meaningful when the response cache is enabled (a disabled cache
    // never counts hits or misses).
    if sim_hits + sim_misses > 0 && sims.len() >= 2 {
        check(
            "sim response cache hit ratio > 0",
            sim_hits > 0,
            format!(" ({sim_hits} hits / {sim_misses} misses)"),
        );
    }

    std::process::exit(if failed { 1 } else { 0 });
}
