//! `dls-serve` binary: bind, serve, shut down gracefully on
//! SIGINT/SIGTERM (drain queued connections, then exit).
//!
//! Flags: `--addr HOST` `--port N` `--workers N` `--queue-bound N`
//! `--cache N` `--sim-cache N` `--shards N` `--keep-alive-ms N`
//! `--max-events N` `--delay-ms N` `--job-capacity N`
//! `--fastpath-audit-pct N`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use dls_serve::{Server, ServerConfig};

static STOP: AtomicBool = AtomicBool::new(false);

// Minimal libc signal binding: the lib target forbids unsafe, but the
// binary needs to install handlers without a registry dependency.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dls-serve [--addr HOST] [--port N] [--workers N] [--queue-bound N] \
         [--cache N] [--sim-cache N] [--shards N] [--keep-alive-ms N] \
         [--max-events N] [--delay-ms N] [--job-capacity N] [--fastpath-audit-pct N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = 7070;
    let mut config = ServerConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => host = value(&mut i),
            "--port" => port = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-bound" => {
                config.queue_bound = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--cache" => config.cache_capacity = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--sim-cache" => {
                config.sim_cache_capacity = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--shards" => config.shards = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--keep-alive-ms" => {
                config.keep_alive_timeout_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-events" => config.max_events = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--delay-ms" => {
                config.handler_delay_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--job-capacity" => {
                config.job_capacity = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fastpath-audit-pct" => {
                config.fastpath_audit_pct = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    config.addr = format!("{host}:{port}");

    install_signal_handlers();

    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dls-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("dls-serve listening on http://{}", handle.addr);

    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("dls-serve: shutting down (draining queued requests)");
    handle.shutdown();
}
