//! The service itself: acceptor, bounded queue, worker pool, handlers.
//!
//! Connection flow: a nonblocking acceptor thread pushes accepted sockets
//! into a bounded queue guarded by a mutex + condvar. When the queue is at
//! its bound the acceptor answers `503 Service Unavailable` with a
//! `Retry-After` header itself — load never reaches the workers. Each
//! worker thread pops connections, reads one request, routes it, and
//! closes the connection.
//!
//! Engine reuse: a worker that has just answered a `/simulate` keeps its
//! decoded [`Scenario`] and borrowing [`rumr::ScenarioRunner`] alive and
//! handles subsequent connections inside that borrow; as long as requests
//! describe the same scenario they run on the same engine allocations
//! (`run_reusing`), matching the batch experiments' hot path. A request
//! for a different scenario exits the borrow and rebuilds.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dls_experiments::json::{json_escape, json_num};
use rumr::sim::{SimError, TraceEvent};
use rumr::{
    MultiRunResult, Prediction, RobustnessReport, RunError, Scenario, SimResult, SpeedModel,
    TraceMode,
};

use crate::api::{ApiError, JobsRequest, PlanRequest, SimulateRequest};
use crate::cache::{CachedPlan, PlanCache};
use crate::http::{self, read_request, write_error, write_response, ReadError, Request};
use crate::metrics::Metrics;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bound on the connection queue; beyond it the acceptor sheds load
    /// with 503s.
    pub queue_bound: usize,
    /// Plan cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Hard cap on `max_events` for `/simulate` (the request timeout knob:
    /// runs hitting it get a 422).
    pub max_events: u64,
    /// Artificial per-request delay (test hook for exercising
    /// backpressure deterministically). 0 in production.
    pub handler_delay_ms: u64,
    /// Bound on not-yet-finished `/jobs` submissions; beyond it `POST
    /// /jobs` sheds load with 503s.
    pub job_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_bound: 64,
            cache_capacity: 128,
            max_events: 50_000_000,
            handler_delay_ms: 0,
            job_capacity: 32,
        }
    }
}

/// State of one submitted multi-load job set.
enum JobState {
    /// Accepted, waiting for the runner thread. Holds the decoded request
    /// until the run starts.
    Queued(Box<JobsRequest>),
    /// The runner thread is executing it.
    Running,
    /// Finished; the rendered result JSON is served verbatim on every
    /// subsequent poll.
    Done(String),
    /// The run failed; polls answer with this status and message.
    Failed(u16, String),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued(_) => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(..) => "failed",
        }
    }

    fn is_open(&self) -> bool {
        matches!(self, JobState::Queued(_) | JobState::Running)
    }
}

/// The `/jobs` registry: submissions live here from `POST /jobs` until
/// (long after) completion; entries are never evicted while the server
/// runs, so job ids are stable poll targets.
#[derive(Default)]
struct JobStore {
    entries: Vec<JobState>,
    run_queue: VecDeque<usize>,
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    cache: PlanCache,
    config: ServerConfig,
    jobs: Mutex<JobStore>,
    jobs_available: Condvar,
}

/// A running server: spawn with [`Server::start`], stop with
/// [`ServerHandle::shutdown`].
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    /// The actually-bound address (resolves ephemeral ports).
    pub addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting. Returns once the listener is live.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::new(),
            cache: PlanCache::new(config.cache_capacity),
            config: config.clone(),
            jobs: Mutex::new(JobStore::default()),
            jobs_available: Condvar::new(),
        });

        let mut threads = Vec::with_capacity(config.workers + 2);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("dls-serve-accept".into())
                    .spawn(move || accept_loop(listener, &shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("dls-serve-jobs".into())
                    .spawn(move || jobs_loop(&shared))?,
            );
        }
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("dls-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// Service metrics (shared with the `/metrics` endpoint).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Signal shutdown and wait for the acceptor and workers to drain
    /// queued connections and exit.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        self.shared.jobs_available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Ask the server to stop without waiting (signal-handler safe path is
    /// in the binary; this is the programmatic one).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        self.shared.jobs_available.notify_all();
    }

    /// Block until every thread has exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.available.notify_all();
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let mut queue = shared.queue.lock().unwrap();
                if queue.len() >= shared.config.queue_bound {
                    drop(queue);
                    reject(shared, stream);
                } else {
                    queue.push_back(stream);
                    shared.metrics.enqueued();
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Shed one connection with `503 Service Unavailable`. The client's
/// request bytes are drained first: closing a socket with unread data
/// sends an RST that can destroy the response before the client reads it.
fn reject(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.rejected();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut seen: Vec<u8> = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the head; requests to this service
    // with bodies are small enough that the remainder rides along.
    while !seen.windows(4).any(|w| w == b"\r\n\r\n") && seen.len() < http::MAX_HEAD_BYTES {
        match io::Read::read(&mut stream, &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => seen.extend_from_slice(&buf[..n]),
        }
    }
    let body = b"{\"error\":\"request queue full\"}";
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        "application/json",
        body,
        &["Retry-After: 1"],
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

fn pop_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if let Some(stream) = queue.pop_front() {
            shared.metrics.dequeued();
            return Some(stream);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain-then-exit: queue is empty and we are shutting down.
            return None;
        }
        let (q, _) = shared
            .available
            .wait_timeout(queue, Duration::from_millis(50))
            .unwrap();
        queue = q;
    }
}

fn worker_loop(shared: &Shared) {
    // `pending` carries a connection (plus its already-read request and
    // decoded body) out of a same-scenario streak so the outer loop can
    // rebuild the runner around the new scenario.
    let mut pending: Option<(TcpStream, Request, SimulateRequest)> = None;
    loop {
        let (stream, request, sim) = match pending.take() {
            Some(p) => p,
            None => {
                let Some(mut stream) = pop_connection(shared) else {
                    return;
                };
                match receive(shared, &mut stream) {
                    Some((request, Routed::Simulate(sim))) => (stream, request, *sim),
                    Some((request, Routed::Other)) => {
                        handle_simple(shared, &mut stream, &request);
                        continue;
                    }
                    None => continue,
                }
            }
        };
        // Same-scenario streak: own the scenario, borrow a runner from it,
        // and keep answering /simulate requests that match it.
        pending = simulate_streak(shared, stream, request, sim);
    }
}

/// Handle `sim` and then keep pulling connections while they decode to the
/// same scenario; returns the first non-matching `/simulate` so the caller
/// can start a new streak around it.
fn simulate_streak(
    shared: &Shared,
    mut stream: TcpStream,
    request: Request,
    sim: SimulateRequest,
) -> Option<(TcpStream, Request, SimulateRequest)> {
    let scenario = sim.scenario.clone();
    let mut runner = scenario.runner(effective_config(shared, &sim.spec));
    handle_simulate(shared, &mut stream, &request, sim, &mut runner);
    // Close the connection now (the client waits for EOF); the runner —
    // and its warm engine — outlive it for the rest of the streak.
    drop(stream);
    loop {
        let mut stream = pop_connection(shared)?;
        match receive(shared, &mut stream) {
            Some((request, Routed::Simulate(sim))) => {
                if same_scenario(&scenario, &sim.scenario) {
                    handle_simulate(shared, &mut stream, &request, *sim, &mut runner);
                } else {
                    return Some((stream, request, *sim));
                }
            }
            Some((request, Routed::Other)) => handle_simple(shared, &mut stream, &request),
            None => continue,
        }
    }
}

/// Manual scenario equality ([`Scenario`] has no `PartialEq`: cost
/// profiles hold closures). Cost-profile / temporal-noise scenarios never
/// arrive over the wire, so platform + workload + error model decide.
fn same_scenario(a: &Scenario, b: &Scenario) -> bool {
    a.w_total == b.w_total
        && a.error_model == b.error_model
        && a.platform.workers() == b.platform.workers()
        && a.cost_profile.is_none()
        && b.cost_profile.is_none()
        && a.temporal_noise.is_none()
        && b.temporal_noise.is_none()
}

enum Routed {
    Simulate(Box<SimulateRequest>),
    Other,
}

/// Read a request and classify it. Requests answered on the spot (parse
/// errors, I/O failures) yield `None`.
fn receive(shared: &Shared, stream: &mut TcpStream) -> Option<(Request, Routed)> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(ReadError::Bad(status, reason, msg)) => {
            let start = Instant::now();
            let _ = write_error(stream, status, reason, &msg);
            shared
                .metrics
                .observe("bad", status, start.elapsed().as_secs_f64());
            return None;
        }
        Err(ReadError::Io(_)) => return None,
    };
    if request.method == "POST" && request.path == "/simulate" {
        let start = Instant::now();
        let body = match request.body_str() {
            Some(b) => b,
            None => {
                respond_400(shared, stream, &request, "body is not UTF-8", start);
                return None;
            }
        };
        match SimulateRequest::from_json_str(body) {
            Ok(sim) => return Some((request, Routed::Simulate(Box::new(sim)))),
            Err(e) => {
                respond_bad_body(shared, stream, &request, &e, start);
                return None;
            }
        }
    }
    Some((request, Routed::Other))
}

fn respond_400(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    msg: &str,
    start: Instant,
) {
    let _ = write_error(stream, 400, "Bad Request", msg);
    shared
        .metrics
        .observe(&request.path, 400, start.elapsed().as_secs_f64());
}

/// Answer a request whose body failed to decode. Non-finite numbers
/// (e.g. `1e999`, which is syntactically valid JSON but overflows f64 to
/// infinity) can never describe a simulation, so they get `422
/// Unprocessable Entity`; everything else is a plain `400`.
fn respond_bad_body(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    error: &ApiError,
    start: Instant,
) {
    let status = if error.is_non_finite() { 422 } else { 400 };
    let reason = if status == 422 {
        "Unprocessable Entity"
    } else {
        "Bad Request"
    };
    let _ = write_error(stream, status, reason, &error.0);
    shared
        .metrics
        .observe(&request.path, status, start.elapsed().as_secs_f64());
}

/// The engine configuration `/simulate` actually runs: metrics on, audit
/// on, `max_events` clamped to the server cap.
fn effective_config(shared: &Shared, spec: &rumr::RunSpec) -> rumr::SimConfig {
    let mut config = spec.config.clone();
    config.trace_mode = TraceMode::MetricsOnly;
    config.audit = true;
    config.max_events = config.max_events.min(shared.config.max_events);
    config
}

fn test_delay(shared: &Shared) {
    if shared.config.handler_delay_ms > 0 {
        thread::sleep(Duration::from_millis(shared.config.handler_delay_ms));
    }
}

/// Routes everything except `/simulate` (which needs the runner borrow).
fn handle_simple(shared: &Shared, stream: &mut TcpStream, request: &Request) {
    let start = Instant::now();
    let status = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            test_delay(shared);
            let _ = write_response(stream, 200, "OK", "text/plain", b"ok\n", &[]);
            200
        }
        ("GET", "/metrics") => {
            let body = shared.metrics.render();
            let _ = write_response(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                body.as_bytes(),
                &[],
            );
            200
        }
        ("POST", "/plan") => {
            let status = handle_plan(shared, stream, request);
            shared
                .metrics
                .observe("/plan", status, start.elapsed().as_secs_f64());
            return;
        }
        ("POST", "/jobs") => {
            let status = handle_jobs_submit(shared, stream, request);
            shared
                .metrics
                .observe("/jobs", status, start.elapsed().as_secs_f64());
            return;
        }
        ("GET", "/jobs") => {
            let status = handle_jobs_list(shared, stream);
            shared
                .metrics
                .observe("/jobs", status, start.elapsed().as_secs_f64());
            return;
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let status = handle_jobs_poll(shared, stream, &request.path["/jobs/".len()..]);
            // One metrics label for every id — polling must not blow up
            // the per-path series.
            shared
                .metrics
                .observe("/jobs/{id}", status, start.elapsed().as_secs_f64());
            return;
        }
        (_, path) if path == "/jobs" || path.starts_with("/jobs/") => {
            let _ = write_error(
                stream,
                405,
                "Method Not Allowed",
                "wrong method for endpoint",
            );
            405
        }
        ("GET", "/plan" | "/simulate") | ("POST", "/healthz" | "/metrics") => {
            let _ = write_error(
                stream,
                405,
                "Method Not Allowed",
                "wrong method for endpoint",
            );
            405
        }
        _ => {
            let _ = write_error(stream, 404, "Not Found", "no such endpoint");
            404
        }
    };
    shared
        .metrics
        .observe(&request.path, status, start.elapsed().as_secs_f64());
}

/// `POST /plan`: canonical-key cache lookup, else solve the planner once
/// on an error-free full-trace run and cache prototype + body.
fn handle_plan(shared: &Shared, stream: &mut TcpStream, request: &Request) -> u16 {
    test_delay(shared);
    let body = match request.body_str() {
        Some(b) => b,
        None => {
            let _ = write_error(stream, 400, "Bad Request", "body is not UTF-8");
            return 400;
        }
    };
    let plan = match PlanRequest::from_json_str(body) {
        Ok(p) => p,
        Err(e) if e.is_non_finite() => {
            let _ = write_error(stream, 422, "Unprocessable Entity", &e.0);
            return 422;
        }
        Err(e) => {
            let _ = write_error(stream, 400, "Bad Request", &e.0);
            return 400;
        }
    };
    let key = plan.cache_key();
    if let Some(cached) = shared.cache.get(&key) {
        shared.metrics.cache_hit();
        let _ = write_response(
            stream,
            200,
            "OK",
            "application/json",
            cached.body.as_bytes(),
            &["X-Plan-Cache: hit"],
        );
        return 200;
    }
    shared.metrics.cache_miss();
    match build_plan(shared, &plan) {
        Ok(cached) => {
            let body = cached.body.clone();
            shared.cache.insert(key, Arc::new(cached));
            let _ = write_response(
                stream,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                &["X-Plan-Cache: miss"],
            );
            200
        }
        Err((status, reason, msg)) => {
            let _ = write_error(stream, status, reason, &msg);
            status
        }
    }
}

type PlanFailure = (u16, &'static str, String);

fn build_plan(shared: &Shared, plan: &PlanRequest) -> Result<CachedPlan, PlanFailure> {
    let prototype = plan
        .kind
        .prototype(&plan.platform, plan.w_total)
        .map_err(|e| (400u16, "Bad Request", format!("planner: {e}")))?;
    let scenario = Scenario {
        platform: plan.platform.clone(),
        w_total: plan.w_total,
        error_model: rumr::ErrorModel::None,
        cost_profile: None,
        temporal_noise: None,
    };
    let spec = rumr::RunSpec::new(plan.kind)
        .trace_mode(TraceMode::Full)
        .max_events(shared.config.max_events)
        .with_prototype(prototype.clone());
    let result = scenario.execute(&spec).map_err(|e| match e {
        RunError::Sim(SimError::EventLimitExceeded) => (
            422u16,
            "Unprocessable Entity",
            "plan simulation exceeded the event limit".to_string(),
        ),
        other => (500u16, "Internal Server Error", other.to_string()),
    })?;
    let oracle = plan
        .kind
        .oracle(&plan.platform, plan.w_total)
        .map_err(|e| (400u16, "Bad Request", format!("oracle: {e}")))?;
    let prediction = oracle.map(|o| o.makespan());
    Ok(CachedPlan {
        prototype,
        body: plan_body(plan, &result, prediction),
    })
}

fn plan_body(plan: &PlanRequest, result: &SimResult, prediction: Option<Prediction>) -> String {
    let mut body = String::with_capacity(1024);
    body.push_str("{\"schedule\":[");
    if let Some(trace) = &result.trace {
        let mut first = true;
        for event in trace.events() {
            if let TraceEvent::SendStart {
                worker,
                chunk,
                time,
            } = event
            {
                if !first {
                    body.push(',');
                }
                first = false;
                body.push_str(&format!(
                    "{{\"worker\":{worker},\"chunk\":{},\"send_time\":{}}}",
                    json_num(*chunk),
                    json_num(*time)
                ));
            }
        }
    }
    body.push_str("],\"makespan\":");
    body.push_str(&json_num(result.makespan));
    body.push_str(",\"num_chunks\":");
    body.push_str(&result.num_chunks.to_string());
    body.push_str(",\"scheduler\":\"");
    body.push_str(&json_escape(&plan.kind.label()));
    body.push_str("\",\"predicted\":");
    match prediction {
        Some(Prediction::Exact { makespan, .. }) => {
            body.push_str(&format!(
                "{{\"kind\":\"exact\",\"makespan\":{}}}",
                json_num(makespan)
            ));
        }
        Some(Prediction::LowerBound { makespan, .. }) => {
            body.push_str(&format!(
                "{{\"kind\":\"lower_bound\",\"makespan\":{}}}",
                json_num(makespan)
            ));
        }
        Some(Prediction::Unavailable) | None => body.push_str("null"),
    }
    body.push_str(",\"robustness\":");
    body.push_str(&plan_robustness(plan));
    body.push('}');
    body
}

/// The `/plan` response's robustness section: the analytic makespan lower
/// bound on the declared platform, plus oracle lower bounds under
/// worst-case revealed speeds — what no schedule can beat if an
/// adversary slows a quarter of the workers by 1.5× / 2× after the plan
/// is committed. Clients can compare a realized makespan against these
/// floors without replanning.
fn plan_robustness(plan: &PlanRequest) -> String {
    let declared = plan.platform.makespan_lower_bound(plan.w_total);
    let mut body = format!("{{\"analytic_lower_bound\":{}", json_num(declared));
    body.push_str(",\"worst_case\":[");
    for (i, slowdown) in [1.5f64, 2.0].iter().enumerate() {
        let model = SpeedModel::Adversarial {
            fraction: 0.25,
            slowdown: *slowdown,
        };
        let bound = model
            .realized_platform(&plan.platform)
            .map(|p| p.makespan_lower_bound(plan.w_total))
            .expect("adversarial factors are floored, so the platform stays valid");
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"speeds\":\"{}\",\"analytic_lower_bound\":{}}}",
            json_escape(&model.label()),
            json_num(bound)
        ));
    }
    body.push_str("]}");
    body
}

/// `POST /jobs`: accept a multi-load job set for asynchronous execution.
/// Answers `202 Accepted` with the job id to poll; a full job table
/// (too many unfinished submissions) sheds load with 503 + Retry-After,
/// mirroring the connection queue.
fn handle_jobs_submit(shared: &Shared, stream: &mut TcpStream, request: &Request) -> u16 {
    test_delay(shared);
    let body = match request.body_str() {
        Some(b) => b,
        None => {
            let _ = write_error(stream, 400, "Bad Request", "body is not UTF-8");
            return 400;
        }
    };
    let jobs_request = match JobsRequest::from_json_str(body) {
        Ok(r) => r,
        Err(e) if e.is_non_finite() => {
            let _ = write_error(stream, 422, "Unprocessable Entity", &e.0);
            return 422;
        }
        Err(e) => {
            let _ = write_error(stream, 400, "Bad Request", &e.0);
            return 400;
        }
    };
    let id = {
        let mut store = shared.jobs.lock().unwrap();
        let open = store.entries.iter().filter(|e| e.is_open()).count();
        if open >= shared.config.job_capacity {
            drop(store);
            let _ = write_response(
                stream,
                503,
                "Service Unavailable",
                "application/json",
                b"{\"error\":\"job table full\"}",
                &["Retry-After: 1"],
            );
            return 503;
        }
        let id = store.entries.len();
        store.entries.push(JobState::Queued(Box::new(jobs_request)));
        store.run_queue.push_back(id);
        id
    };
    shared.jobs_available.notify_one();
    let body = format!("{{\"id\":{id},\"status\":\"queued\"}}");
    let _ = write_response(
        stream,
        202,
        "Accepted",
        "application/json",
        body.as_bytes(),
        &[&format!("Location: /jobs/{id}")],
    );
    202
}

/// `GET /jobs`: id + status of every submission, in submission order.
fn handle_jobs_list(shared: &Shared, stream: &mut TcpStream) -> u16 {
    let store = shared.jobs.lock().unwrap();
    let mut body = String::from("{\"jobs\":[");
    for (id, entry) in store.entries.iter().enumerate() {
        if id > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"id\":{id},\"status\":\"{}\"}}", entry.label()));
    }
    drop(store);
    body.push_str("]}");
    let _ = write_response(stream, 200, "OK", "application/json", body.as_bytes(), &[]);
    200
}

/// `GET /jobs/{id}`: poll one submission. Unfinished jobs answer their
/// status; finished jobs answer the stored result (or failure) verbatim,
/// so repeated polls are byte-identical.
fn handle_jobs_poll(shared: &Shared, stream: &mut TcpStream, id_str: &str) -> u16 {
    let Ok(id) = id_str.parse::<usize>() else {
        let _ = write_error(stream, 400, "Bad Request", "job id must be an integer");
        return 400;
    };
    let store = shared.jobs.lock().unwrap();
    let Some(entry) = store.entries.get(id) else {
        drop(store);
        let _ = write_error(stream, 404, "Not Found", "no such job");
        return 404;
    };
    match entry {
        JobState::Queued(_) | JobState::Running => {
            let body = format!("{{\"id\":{id},\"status\":\"{}\"}}", entry.label());
            drop(store);
            let _ = write_response(stream, 200, "OK", "application/json", body.as_bytes(), &[]);
            200
        }
        JobState::Done(body) => {
            let body = body.clone();
            drop(store);
            let _ = write_response(stream, 200, "OK", "application/json", body.as_bytes(), &[]);
            200
        }
        JobState::Failed(status, msg) => {
            let (status, msg) = (*status, msg.clone());
            drop(store);
            let reason = match status {
                400 => "Bad Request",
                422 => "Unprocessable Entity",
                _ => "Internal Server Error",
            };
            let _ = write_error(stream, status, reason, &msg);
            status
        }
    }
}

/// The `/jobs` runner thread: pops queued submissions and executes them
/// one at a time (multi-load runs are long; the HTTP workers only submit
/// and poll). Exits when shutdown is signalled and the queue is drained.
fn jobs_loop(shared: &Shared) {
    loop {
        let (id, request) = {
            let mut store = shared.jobs.lock().unwrap();
            loop {
                if let Some(id) = store.run_queue.pop_front() {
                    let taken = std::mem::replace(&mut store.entries[id], JobState::Running);
                    let JobState::Queued(request) = taken else {
                        unreachable!("run queue holds only queued jobs");
                    };
                    break (id, request);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (s, _) = shared
                    .jobs_available
                    .wait_timeout(store, Duration::from_millis(50))
                    .unwrap();
                store = s;
            }
        };
        let outcome = run_jobs(shared, id, &request);
        let mut store = shared.jobs.lock().unwrap();
        store.entries[id] = match outcome {
            Ok(body) => JobState::Done(body),
            Err((status, msg)) => JobState::Failed(status, msg),
        };
    }
}

/// Execute one submission; the run needs a full trace so the job-level
/// audit can check cross-job master exclusivity.
fn run_jobs(shared: &Shared, id: usize, request: &JobsRequest) -> Result<String, (u16, String)> {
    let mut spec = request.spec.clone();
    spec.config.trace_mode = TraceMode::Full;
    spec.config.audit = true;
    spec.config.max_events = spec.config.max_events.min(shared.config.max_events);
    match request.scenario.execute_jobs(&spec) {
        Ok(result) => Ok(jobs_body(id, &spec, &result)),
        Err(RunError::Build(e)) => Err((400, format!("planner: {e}"))),
        Err(RunError::Sim(SimError::EventLimitExceeded)) => Err((
            422,
            "simulation exceeded the event limit (raise max_events or shrink the run)".into(),
        )),
        Err(e) => Err((500, e.to_string())),
    }
}

fn jobs_body(id: usize, spec: &rumr::MultiRunSpec, result: &MultiRunResult) -> String {
    let mut body = String::with_capacity(1024);
    body.push_str(&format!(
        "{{\"id\":{id},\"status\":\"done\",\"policy\":\"{}\",\"makespan\":{},\"num_chunks\":{},\"jobs\":[",
        spec.policy.label(),
        json_num(result.sim.makespan),
        result.sim.num_chunks
    ));
    for (i, j) in result.jobs.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"job\":{},\"release\":{},\"size\":{},\"first_dispatch\":{},\"completion\":{},\
             \"response\":{},\"stretch\":{},\"lower_bound\":{},\"dispatched\":{},\
             \"completed\":{},\"lost\":{}}}",
            j.job,
            json_num(j.release),
            json_num(j.size),
            j.first_dispatch.map_or("null".to_string(), json_num),
            j.completion.map_or("null".to_string(), json_num),
            j.response.map_or("null".to_string(), json_num),
            j.stretch.map_or("null".to_string(), json_num),
            json_num(j.lower_bound),
            json_num(j.dispatched),
            json_num(j.completed),
            json_num(j.lost)
        ));
    }
    let f = &result.fairness;
    body.push_str(&format!(
        "],\"fairness\":{{\"completed_jobs\":{},\"max_stretch\":{},\"mean_stretch\":{},\"jain_index\":{}}}",
        f.completed_jobs,
        json_num(f.max_stretch),
        json_num(f.mean_stretch),
        json_num(f.jain_index)
    ));
    body.push_str(",\"audit_findings\":[");
    let engine_findings = result.sim.audit.as_deref().unwrap_or(&[]);
    for (i, finding) in engine_findings
        .iter()
        .chain(result.job_audit.iter())
        .enumerate()
    {
        if i > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(&json_escape(&finding.to_string()));
        body.push('"');
    }
    body.push_str("]}");
    body
}

/// `POST /simulate`: run the spec on the worker's current runner (which
/// borrows the decoded scenario — see [`simulate_streak`]).
fn handle_simulate(
    shared: &Shared,
    stream: &mut TcpStream,
    _request: &Request,
    mut sim: SimulateRequest,
    runner: &mut rumr::ScenarioRunner<'_>,
) {
    let start = Instant::now();
    test_delay(shared);
    // Reuse a cached prototype when /plan has already solved this
    // (platform, workload, scheduler) triple.
    if sim.spec.prototype.is_none() {
        if let Some(cached) = shared.cache.get(&sim.plan_key()) {
            sim.spec = sim.spec.with_prototype(cached.prototype.clone());
        }
    }
    let mut spec = sim.spec;
    spec.config = effective_config(shared, &spec);

    let status = match run_reps(runner, &spec) {
        Ok(results) => {
            // Per-run robustness reports when the request revealed speeds
            // (clairvoyant twins are replanned on the realized platform).
            let robustness: Vec<RobustnessReport> = if spec.config.speeds.is_active() {
                spec.seeds()
                    .zip(&results)
                    .filter_map(|(seed, r)| runner.scenario().robustness(&spec, seed, r.makespan))
                    .collect()
            } else {
                Vec::new()
            };
            let body = simulate_body(&spec, &results, &robustness);
            let _ = write_response(stream, 200, "OK", "application/json", body.as_bytes(), &[]);
            200
        }
        Err(RunError::Build(e)) => {
            let _ = write_error(stream, 400, "Bad Request", &format!("planner: {e}"));
            400
        }
        Err(RunError::Sim(SimError::EventLimitExceeded)) => {
            let _ = write_error(
                stream,
                422,
                "Unprocessable Entity",
                "simulation exceeded the event limit (raise max_events or shrink the run)",
            );
            422
        }
        Err(e) => {
            let _ = write_error(stream, 500, "Internal Server Error", &e.to_string());
            500
        }
    };
    shared
        .metrics
        .observe("/simulate", status, start.elapsed().as_secs_f64());
}

fn run_reps(
    runner: &mut rumr::ScenarioRunner<'_>,
    spec: &rumr::RunSpec,
) -> Result<Vec<SimResult>, RunError> {
    let mut results = Vec::with_capacity(spec.reps as usize);
    for seed in spec.seeds() {
        let one = spec.clone().seed(seed).reps(1);
        results.push(runner.execute(&one)?);
    }
    Ok(results)
}

fn simulate_body(
    spec: &rumr::RunSpec,
    results: &[SimResult],
    robustness: &[RobustnessReport],
) -> String {
    let mut body = String::with_capacity(512);
    body.push_str("{\"runs\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"seed\":{},\"makespan\":{},\"num_chunks\":{},\"completed_work\":{},\"conservation_residual\":{}",
            spec.seed + i as u64,
            json_num(r.makespan),
            r.num_chunks,
            json_num(r.completed_work()),
            json_num(r.conservation_residual())
        ));
        if let Some(m) = &r.metrics {
            body.push_str(&format!(
                ",\"metrics\":{{\"trace_events\":{},\"link_utilization\":{},\"num_gaps\":{}}}",
                m.trace_events,
                json_num(m.link_utilization(r.makespan)),
                m.num_gaps
            ));
        }
        if let Some(rb) = robustness.get(i) {
            body.push_str(&format!(
                ",\"robustness\":{{\"ratio\":{},\"clairvoyant_makespan\":{},\"replanned_makespan\":{},\"analytic_lower_bound\":{}}}",
                json_num(rb.ratio),
                json_num(rb.clairvoyant_makespan),
                rb.replanned_makespan.map_or("null".to_string(), json_num),
                json_num(rb.analytic_lower_bound)
            ));
        }
        body.push_str(",\"audit_findings\":[");
        if let Some(findings) = &r.audit {
            for (j, f) in findings.iter().enumerate() {
                if j > 0 {
                    body.push(',');
                }
                body.push('"');
                body.push_str(&json_escape(&f.to_string()));
                body.push('"');
            }
        }
        body.push_str("]}");
    }
    let mean = if results.is_empty() {
        0.0
    } else {
        results.iter().map(|r| r.makespan).sum::<f64>() / results.len() as f64
    };
    body.push_str(&format!(
        "],\"mean_makespan\":{},\"scheduler\":\"{}\"}}",
        json_num(mean),
        json_escape(&spec.kind.label())
    ));
    body
}
