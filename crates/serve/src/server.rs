//! The service itself: acceptor, bounded queue, worker pool, engine
//! shards, handlers.
//!
//! Connection flow: a blocking acceptor thread pushes accepted sockets
//! into a bounded queue guarded by a mutex + condvar. When the queue is at
//! its bound the acceptor answers `503 Service Unavailable` with a
//! `Retry-After` header itself — load never reaches the workers. Accept
//! failures are counted on `/metrics` and retried with exponential
//! backoff; shutdown wakes the blocked acceptor with a loopback connect.
//!
//! Each worker thread pops a connection and serves *all* of its requests:
//! HTTP/1.1 connections are persistent by default (see [`crate::http`]),
//! so a worker stays with its connection until the client closes it, sends
//! `Connection: close`, goes idle past the keep-alive timeout, or sends
//! something malformed. A keep-alive connection therefore occupies a
//! worker for its lifetime — size `workers` at or above the number of
//! concurrent client connections you expect to serve.
//!
//! `/simulate` execution happens on engine shards, not on HTTP workers:
//! each decoded request is routed by a stable hash of its scenario
//! (platform + workload + error model) to one of `shards` dedicated
//! threads, each owning a warm borrowing [`rumr::ScenarioRunner`].
//! Same-scenario requests always land on the same shard and reuse its
//! engine allocations (`run_reusing`), no matter which connection or
//! worker carried them. Before dispatching, the worker consults the
//! `/simulate` response cache (canonical request → response body —
//! sound because responses are byte-deterministic in the canonical
//! request); hits are served on the spot with `X-Sim-Cache: hit`.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dls_experiments::json::{json_escape, json_num};
use rumr::sim::{SimError, TraceEvent};
use rumr::{
    FastPath, FastPathAnswer, MultiRunResult, Prediction, RepColumns, RobustnessReport,
    RoundTiming, RunError, Scenario, SimResult, SpeedModel, TraceMode,
};

use crate::api::{ApiError, JobsRequest, PlanRequest, SimulateRequest};
use crate::cache::{CachedPlan, PlanCache, SimCache};
use crate::http::{self, read_request, write_error, write_response, ReadError, Request};
use crate::metrics::Metrics;
use crate::shard::{shard_index, Outcome, Reply, ShardJob, ShardPool};
use crate::sync::{lock, wait_timeout};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests. A keep-alive connection occupies
    /// a worker for its lifetime, so size this at or above the expected
    /// number of concurrent connections.
    pub workers: usize,
    /// Bound on the connection queue; beyond it the acceptor sheds load
    /// with 503s.
    pub queue_bound: usize,
    /// Plan cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// `/simulate` response cache capacity (entries); 0 disables it.
    pub sim_cache_capacity: usize,
    /// Engine shards executing `/simulate`; 0 picks one per available
    /// core (capped at 8).
    pub shards: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_timeout_ms: u64,
    /// Hard cap on `max_events` for `/simulate` (the request timeout knob:
    /// runs hitting it get a 422).
    pub max_events: u64,
    /// Artificial per-request delay (test hook for exercising
    /// backpressure deterministically). 0 in production.
    pub handler_delay_ms: u64,
    /// Bound on not-yet-finished `/jobs` submissions; beyond it `POST
    /// /jobs` sheds load with 503s.
    pub job_capacity: usize,
    /// Sampled-DES-audit rate: the percentage of analytic fast-path
    /// answers re-run through the engine and cross-checked against the
    /// oracle tolerance. `0` disables the audit, `>= 100` audits every
    /// analytic answer. Divergences are counted on `/metrics`
    /// (`dls_serve_fastpath_divergence_total`) and treated as fatal in CI.
    pub fastpath_audit_pct: u32,
    /// Test hook: perturb every audited engine re-run so it disagrees
    /// with the analytic answer, proving the divergence counter fires.
    /// Never set in production.
    pub fastpath_divergence_inject: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_bound: 64,
            cache_capacity: 128,
            sim_cache_capacity: 256,
            shards: 0,
            keep_alive_timeout_ms: 5_000,
            max_events: 50_000_000,
            handler_delay_ms: 0,
            job_capacity: 32,
            fastpath_audit_pct: 10,
            fastpath_divergence_inject: false,
        }
    }
}

/// State of one submitted multi-load job set.
enum JobState {
    /// Accepted, waiting for the runner thread. Holds the decoded request
    /// until the run starts.
    Queued(Box<JobsRequest>),
    /// The runner thread is executing it.
    Running,
    /// Finished; the rendered result JSON is served verbatim on every
    /// subsequent poll.
    Done(String),
    /// The run failed; polls answer with this status and message.
    Failed(u16, String),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued(_) => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(..) => "failed",
        }
    }

    fn is_open(&self) -> bool {
        matches!(self, JobState::Queued(_) | JobState::Running)
    }
}

/// The `/jobs` registry: submissions live here from `POST /jobs` until
/// (long after) completion; entries are never evicted while the server
/// runs, so job ids are stable poll targets.
#[derive(Default)]
struct JobStore {
    entries: Vec<JobState>,
    run_queue: VecDeque<usize>,
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    cache: PlanCache,
    sim_cache: SimCache,
    shards: ShardPool,
    config: ServerConfig,
    addr: std::net::SocketAddr,
    jobs: Mutex<JobStore>,
    jobs_available: Condvar,
}

/// A running server: spawn with [`Server::start`], stop with
/// [`ServerHandle::shutdown`].
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    /// The actually-bound address (resolves ephemeral ports).
    pub addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting. Returns once the listener is live.
    pub fn start(mut config: ServerConfig) -> io::Result<ServerHandle> {
        if config.shards == 0 {
            config.shards = thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shards = config.shards;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::new(),
            cache: PlanCache::new(config.cache_capacity),
            sim_cache: SimCache::new(config.sim_cache_capacity),
            shards: ShardPool::new(shards),
            config,
            addr,
            jobs: Mutex::new(JobStore::default()),
            jobs_available: Condvar::new(),
        });

        let mut threads = Vec::with_capacity(workers + shards + 2);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("dls-serve-accept".into())
                    .spawn(move || accept_loop(listener, &shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("dls-serve-jobs".into())
                    .spawn(move || jobs_loop(&shared))?,
            );
        }
        for i in 0..shared.shards.len() {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("dls-serve-shard-{i}"))
                    .spawn(move || shard_loop(&shared, i))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("dls-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// Service metrics (shared with the `/metrics` endpoint).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Signal shutdown and wait for the acceptor, shards and workers to
    /// drain queued work and exit.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Ask the server to stop without waiting (signal-handler safe path is
    /// in the binary; this is the programmatic one).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        self.shared.jobs_available.notify_all();
        self.shared.shards.notify_all();
        wake_acceptor(self.shared.addr);
    }

    /// Block until every thread has exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Unblock an acceptor sitting in `accept()` by connecting to it. The
/// acceptor re-checks the shutdown flag after every accept, so the dummy
/// connection is dropped without being served.
fn wake_acceptor(addr: std::net::SocketAddr) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        target.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
    }
    let _ = TcpStream::connect_timeout(&target, Duration::from_millis(250));
}

/// Blocking accept loop. Accept failures (fd exhaustion, aborted
/// connections) are counted on `/metrics` and retried with exponential
/// backoff instead of being silently swallowed in a busy poll.
fn accept_loop(listener: TcpListener, shared: &Shared) {
    let mut backoff = Duration::from_millis(10);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(10);
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Likely the wake-up connect from shutdown; either way
                    // we are done serving.
                    drop(stream);
                    shared.available.notify_all();
                    return;
                }
                let mut queue = lock(&shared.queue);
                if queue.len() >= shared.config.queue_bound {
                    drop(queue);
                    reject(shared, stream);
                } else {
                    queue.push_back(stream);
                    shared.metrics.enqueued();
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(_) => {
                shared.metrics.accept_error();
                if shared.shutdown.load(Ordering::SeqCst) {
                    shared.available.notify_all();
                    return;
                }
                thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Shed one connection with `503 Service Unavailable`. The client's
/// request bytes — head *and* the body its `Content-Length` declares —
/// are drained first: closing a socket with unread data sends an RST
/// that can destroy the response before the client reads it.
fn reject(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.rejected();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut seen: Vec<u8> = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the head.
    while http::find_head_end(&seen).is_none() && seen.len() < http::MAX_HEAD_BYTES {
        match io::Read::read(&mut stream, &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => seen.extend_from_slice(&buf[..n]),
        }
    }
    // Then the declared body, which the client may still be writing.
    if let Some(head_end) = http::find_head_end(&seen) {
        let declared = http::declared_content_length(&seen[..head_end]);
        let total = (head_end + 4).saturating_add(declared.min(http::MAX_BODY_BYTES));
        while seen.len() < total {
            match io::Read::read(&mut stream, &mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => seen.extend_from_slice(&buf[..n]),
            }
        }
    }
    let body = http::error_body(503, "request queue full", None);
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        "application/json",
        body.as_bytes(),
        &["Retry-After: 1"],
        false,
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

fn pop_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = lock(&shared.queue);
    loop {
        if let Some(stream) = queue.pop_front() {
            shared.metrics.dequeued();
            return Some(stream);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain-then-exit: queue is empty and we are shutting down.
            return None;
        }
        queue = wait_timeout(&shared.available, queue, Duration::from_millis(50));
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = pop_connection(shared) {
        handle_connection(shared, stream);
    }
}

/// Serve every request on one connection, in order, until the client
/// closes it, opts out of keep-alive, goes idle past the timeout, or
/// sends something malformed (after which framing cannot be trusted, so
/// the error response carries `Connection: close` and the socket is
/// dropped).
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let idle = Duration::from_millis(shared.config.keep_alive_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(idle));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // Don't let Nagle hold a response segment hostage to the client's
    // delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut carry = Vec::new();
    loop {
        let request = match read_request(&mut stream, &mut carry) {
            Ok(r) => r,
            Err(ReadError::Bad(status, reason, msg)) => {
                let start = Instant::now();
                let _ = write_error(&mut stream, status, reason, &msg, false);
                shared
                    .metrics
                    .observe("bad", status, start.elapsed().as_secs_f64());
                return;
            }
            // Timeout/reset mid-request, or a clean close between
            // requests: nothing (more) to serve.
            Err(ReadError::Io(_)) | Err(ReadError::Closed) => return,
        };
        let keep = request.keep_alive;
        handle_request(shared, &mut stream, request);
        if !keep || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Route one request. `/simulate` decodes here and dispatches to an
/// engine shard; everything else is handled inline.
///
/// Every endpoint is also reachable under the `/v1` path prefix (the
/// versioned spelling of the same contract — see `docs/SERVICE.md`); the
/// prefix is stripped before dispatch so both spellings share handlers,
/// metrics labels, and cache keys.
fn handle_request(shared: &Shared, stream: &mut TcpStream, mut request: Request) {
    if let Some(rest) = request.path.strip_prefix("/v1") {
        if rest.is_empty() {
            request.path = "/".into();
        } else if rest.starts_with('/') {
            request.path = rest.to_string();
        }
    }
    let keep = request.keep_alive;
    if request.method == "POST" && request.path == "/simulate" {
        let start = Instant::now();
        let body = match request.body_str() {
            Some(b) => b,
            None => {
                respond_400(shared, stream, &request, "body is not UTF-8", start, keep);
                return;
            }
        };
        match SimulateRequest::from_json_str(body) {
            Ok(sim) => handle_simulate(shared, stream, Box::new(sim), keep),
            Err(e) => respond_bad_body(shared, stream, &request, &e, start, keep),
        }
        return;
    }
    handle_simple(shared, stream, &request, keep);
}

/// Manual scenario equality ([`Scenario`] has no `PartialEq`: cost
/// profiles hold closures). Cost-profile / temporal-noise scenarios never
/// arrive over the wire, so platform + workload + error model decide.
fn same_scenario(a: &Scenario, b: &Scenario) -> bool {
    a.w_total == b.w_total
        && a.error_model == b.error_model
        && a.platform.workers() == b.platform.workers()
        && a.cost_profile.is_none()
        && b.cost_profile.is_none()
        && a.temporal_noise.is_none()
        && b.temporal_noise.is_none()
}

fn respond_400(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    msg: &str,
    start: Instant,
    keep: bool,
) {
    let _ = write_error(stream, 400, "Bad Request", msg, keep);
    shared
        .metrics
        .observe(&request.path, 400, start.elapsed().as_secs_f64());
}

/// Answer a request whose body failed to decode. Non-finite numbers
/// (e.g. `1e999`, which is syntactically valid JSON but overflows f64 to
/// infinity) can never describe a simulation, so they get `422
/// Unprocessable Entity`; everything else is a plain `400`.
fn respond_bad_body(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    error: &ApiError,
    start: Instant,
    keep: bool,
) {
    let status = if error.is_non_finite() { 422 } else { 400 };
    let reason = if status == 422 {
        "Unprocessable Entity"
    } else {
        "Bad Request"
    };
    let _ = write_error(stream, status, reason, &error.0, keep);
    shared
        .metrics
        .observe(&request.path, status, start.elapsed().as_secs_f64());
}

/// The engine configuration `/simulate` actually runs: metrics on, audit
/// on, `max_events` clamped to the server cap.
fn effective_config(shared: &Shared, spec: &rumr::RunSpec) -> rumr::SimConfig {
    let mut config = spec.config.clone();
    config.trace_mode = TraceMode::MetricsOnly;
    config.audit = true;
    config.max_events = config.max_events.min(shared.config.max_events);
    config
}

fn test_delay(shared: &Shared) {
    if shared.config.handler_delay_ms > 0 {
        thread::sleep(Duration::from_millis(shared.config.handler_delay_ms));
    }
}

/// Routes everything except `/simulate` (which goes through the shards).
fn handle_simple(shared: &Shared, stream: &mut TcpStream, request: &Request, keep: bool) {
    let start = Instant::now();
    let status = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            test_delay(shared);
            let _ = write_response(stream, 200, "OK", "text/plain", b"ok\n", &[], keep);
            200
        }
        ("GET", "/metrics") => {
            let mut body = shared.metrics.render();
            append_eviction_metrics(shared, &mut body);
            let _ = write_response(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                body.as_bytes(),
                &[],
                keep,
            );
            200
        }
        ("POST", "/plan") => {
            let status = handle_plan(shared, stream, request, keep);
            shared
                .metrics
                .observe("/plan", status, start.elapsed().as_secs_f64());
            return;
        }
        ("POST", "/jobs") => {
            let status = handle_jobs_submit(shared, stream, request, keep);
            shared
                .metrics
                .observe("/jobs", status, start.elapsed().as_secs_f64());
            return;
        }
        ("GET", "/jobs") => {
            let status = handle_jobs_list(shared, stream, keep);
            shared
                .metrics
                .observe("/jobs", status, start.elapsed().as_secs_f64());
            return;
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let status = handle_jobs_poll(shared, stream, &request.path["/jobs/".len()..], keep);
            // One metrics label for every id — polling must not blow up
            // the per-path series.
            shared
                .metrics
                .observe("/jobs/{id}", status, start.elapsed().as_secs_f64());
            return;
        }
        (_, path) if path == "/jobs" || path.starts_with("/jobs/") => {
            let _ = write_error(
                stream,
                405,
                "Method Not Allowed",
                "wrong method for endpoint",
                keep,
            );
            405
        }
        ("GET", "/plan" | "/simulate") | ("POST", "/healthz" | "/metrics") => {
            let _ = write_error(
                stream,
                405,
                "Method Not Allowed",
                "wrong method for endpoint",
                keep,
            );
            405
        }
        _ => {
            let _ = write_error(stream, 404, "Not Found", "no such endpoint", keep);
            404
        }
    };
    shared
        .metrics
        .observe(&request.path, status, start.elapsed().as_secs_f64());
}

/// The cache eviction counters live on the caches, not in [`Metrics`];
/// the `/metrics` handler stitches them into the exposition here.
fn append_eviction_metrics(shared: &Shared, body: &mut String) {
    use std::fmt::Write as _;
    body.push_str("# HELP dls_serve_plan_cache_evictions_total Plan cache LRU evictions.\n");
    body.push_str("# TYPE dls_serve_plan_cache_evictions_total counter\n");
    let _ = writeln!(
        body,
        "dls_serve_plan_cache_evictions_total {}",
        shared.cache.evictions()
    );
    body.push_str(
        "# HELP dls_serve_sim_cache_evictions_total Simulate response cache LRU evictions.\n",
    );
    body.push_str("# TYPE dls_serve_sim_cache_evictions_total counter\n");
    let _ = writeln!(
        body,
        "dls_serve_sim_cache_evictions_total {}",
        shared.sim_cache.evictions()
    );
}

/// `POST /plan`: canonical-key cache lookup, else solve the planner once
/// on an error-free full-trace run and cache prototype + body.
fn handle_plan(shared: &Shared, stream: &mut TcpStream, request: &Request, keep: bool) -> u16 {
    test_delay(shared);
    let body = match request.body_str() {
        Some(b) => b,
        None => {
            let _ = write_error(stream, 400, "Bad Request", "body is not UTF-8", keep);
            return 400;
        }
    };
    let plan = match PlanRequest::from_json_str(body) {
        Ok(p) => p,
        Err(e) if e.is_non_finite() => {
            let _ = write_error(stream, 422, "Unprocessable Entity", &e.0, keep);
            return 422;
        }
        Err(e) => {
            let _ = write_error(stream, 400, "Bad Request", &e.0, keep);
            return 400;
        }
    };
    let key = plan.cache_key();
    if let Some(cached) = shared.cache.get(&key) {
        shared.metrics.cache_hit();
        let source = format!("X-Answer-Source: {}", cached.source);
        let _ = write_response(
            stream,
            200,
            "OK",
            "application/json",
            cached.body.as_bytes(),
            &["X-Plan-Cache: hit", &source],
            keep,
        );
        return 200;
    }
    shared.metrics.cache_miss();
    match build_plan(shared, &plan, &key) {
        Ok(cached) => {
            let body = cached.body.clone();
            let source = format!("X-Answer-Source: {}", cached.source);
            shared.cache.insert(key, Arc::new(cached));
            let _ = write_response(
                stream,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                &["X-Plan-Cache: miss", &source],
                keep,
            );
            200
        }
        Err((status, reason, msg)) => {
            let _ = write_error(stream, status, reason, &msg, keep);
            status
        }
    }
}

type PlanFailure = (u16, &'static str, String);

/// Solve a `/plan` request: prototype first (both paths reuse it), then
/// the analytic fast path when the scheduler's oracle makes an exact
/// claim — the error-free, declared-speed plan run is exactly the
/// deterministic model-conforming case the closed forms answer — with the
/// full-trace engine run as fallback. A configurable sample of analytic
/// answers is cross-checked against the engine (the sampled DES audit).
fn build_plan(shared: &Shared, plan: &PlanRequest, key: &str) -> Result<CachedPlan, PlanFailure> {
    let prototype = plan
        .kind
        .prototype(&plan.platform, plan.w_total)
        .map_err(|e| (400u16, "Bad Request", format!("planner: {e}")))?;
    let scenario = Scenario {
        platform: plan.platform.clone(),
        w_total: plan.w_total,
        error_model: rumr::ErrorModel::None,
        cost_profile: None,
        temporal_noise: None,
    };
    let probe = rumr::RunSpec::new(plan.kind);
    let decision = FastPath::resolve_kind(&scenario, &probe, plan.kind)
        .map_err(|e| (400u16, "Bad Request", format!("oracle: {e}")))?;
    if let Some(answer) = decision.analytic() {
        shared.metrics.fastpath_analytic();
        if FastPath::audit_due(key, shared.config.fastpath_audit_pct) {
            shared.metrics.fastpath_audited();
            let audit_spec = rumr::RunSpec::new(plan.kind)
                .max_events(shared.config.max_events)
                .with_prototype(prototype.clone());
            audit_analytic(shared, &scenario, &audit_spec, answer);
        }
        return Ok(CachedPlan {
            prototype,
            body: plan_body_analytic(plan, answer),
            source: "analytic",
        });
    }
    shared.metrics.fastpath_engine();
    let spec = rumr::RunSpec::new(plan.kind)
        .trace_mode(TraceMode::Full)
        .max_events(shared.config.max_events)
        .with_prototype(prototype.clone());
    let result = scenario.execute(&spec).map_err(|e| match e {
        RunError::Sim(SimError::EventLimitExceeded) => (
            422u16,
            "Unprocessable Entity",
            "plan simulation exceeded the event limit".to_string(),
        ),
        other => (500u16, "Internal Server Error", other.to_string()),
    })?;
    let oracle = plan
        .kind
        .oracle(&plan.platform, plan.w_total)
        .map_err(|e| (400u16, "Bad Request", format!("oracle: {e}")))?;
    let prediction = oracle.map(|o| o.makespan());
    Ok(CachedPlan {
        prototype,
        body: plan_body(plan, &result, prediction),
        source: "engine",
    })
}

/// The sampled DES audit: re-run an analytic answer through the engine
/// and count a divergence when the simulated makespan falls outside the
/// oracle's stated tolerance (or the engine fails outright — an engine
/// error on a run the fast path accepted is itself a disagreement).
fn audit_analytic(
    shared: &Shared,
    scenario: &Scenario,
    spec: &rumr::RunSpec,
    answer: &FastPathAnswer,
) {
    let simulated = match scenario.execute(&spec.clone().reps(1)) {
        Ok(result) => result.makespan,
        Err(_) => {
            shared.metrics.fastpath_divergence();
            return;
        }
    };
    let simulated = if shared.config.fastpath_divergence_inject {
        simulated * 2.0
    } else {
        simulated
    };
    if !answer.agrees_with(simulated) {
        shared.metrics.fastpath_divergence();
    }
}

fn plan_body(plan: &PlanRequest, result: &SimResult, prediction: Option<Prediction>) -> String {
    let mut body = String::with_capacity(1024);
    body.push_str("{\"api_version\":\"");
    body.push_str(http::API_VERSION);
    body.push_str("\",\"source\":\"engine\",\"schedule\":[");
    if let Some(trace) = &result.trace {
        let mut first = true;
        for event in trace.events() {
            if let TraceEvent::SendStart {
                worker,
                chunk,
                time,
            } = event
            {
                if !first {
                    body.push(',');
                }
                first = false;
                body.push_str(&format!(
                    "{{\"worker\":{worker},\"chunk\":{},\"send_time\":{}}}",
                    json_num(*chunk),
                    json_num(*time)
                ));
            }
        }
    }
    body.push_str("],\"rounds\":null,\"makespan\":");
    body.push_str(&json_num(result.makespan));
    body.push_str(",\"num_chunks\":");
    body.push_str(&result.num_chunks.to_string());
    body.push_str(",\"scheduler\":\"");
    body.push_str(&json_escape(&plan.kind.label()));
    body.push_str("\",\"predicted\":");
    match prediction {
        Some(Prediction::Exact { makespan, .. }) => {
            body.push_str(&format!(
                "{{\"kind\":\"exact\",\"makespan\":{}}}",
                json_num(makespan)
            ));
        }
        Some(Prediction::LowerBound { makespan, .. }) => {
            body.push_str(&format!(
                "{{\"kind\":\"lower_bound\",\"makespan\":{}}}",
                json_num(makespan)
            ));
        }
        Some(Prediction::Unavailable) | None => body.push_str("null"),
    }
    body.push_str(",\"robustness\":");
    body.push_str(&plan_robustness(plan));
    body.push('}');
    body
}

/// The analytic `/plan` body: same shape as the engine body, but the
/// makespan is the oracle closed form, the per-event `schedule` array is
/// empty (no trace exists — the per-round `rounds` timeline replaces it
/// where the model pins one), and `num_chunks` is `null`.
fn plan_body_analytic(plan: &PlanRequest, answer: &FastPathAnswer) -> String {
    let mut body = String::with_capacity(1024);
    body.push_str("{\"api_version\":\"");
    body.push_str(http::API_VERSION);
    body.push_str("\",\"source\":\"analytic\",\"schedule\":[],\"rounds\":");
    body.push_str(&rounds_json(answer.rounds.as_deref()));
    body.push_str(",\"makespan\":");
    body.push_str(&json_num(answer.makespan));
    body.push_str(",\"num_chunks\":null,\"scheduler\":\"");
    body.push_str(&json_escape(&plan.kind.label()));
    body.push_str("\",\"predicted\":");
    body.push_str(&format!(
        "{{\"kind\":\"exact\",\"makespan\":{}}}",
        json_num(answer.makespan)
    ));
    body.push_str(",\"robustness\":");
    body.push_str(&plan_robustness(plan));
    body.push('}');
    body
}

/// Render an oracle round timeline as JSON (`null` when the model does
/// not pin per-round instants, e.g. the heterogeneous UMR oracle).
fn rounds_json(rounds: Option<&[RoundTiming]>) -> String {
    let Some(rounds) = rounds else {
        return "null".to_string();
    };
    let mut out = String::with_capacity(64 * rounds.len() + 2);
    out.push('[');
    for (i, r) in rounds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"round\":{},\"chunk\":{},\"dispatch_start\":{},\"dispatch_end\":{},\
             \"first_finish\":{},\"last_finish\":{}}}",
            r.round,
            json_num(r.chunk),
            json_num(r.dispatch_start),
            json_num(r.dispatch_end),
            json_num(r.first_finish),
            json_num(r.last_finish)
        ));
    }
    out.push(']');
    out
}

/// The `/plan` response's robustness section: the analytic makespan lower
/// bound on the declared platform, plus oracle lower bounds under
/// worst-case revealed speeds — what no schedule can beat if an
/// adversary slows a quarter of the workers by 1.5× / 2× after the plan
/// is committed. Clients can compare a realized makespan against these
/// floors without replanning.
fn plan_robustness(plan: &PlanRequest) -> String {
    let declared = plan.platform.makespan_lower_bound(plan.w_total);
    let mut body = format!("{{\"analytic_lower_bound\":{}", json_num(declared));
    body.push_str(",\"worst_case\":[");
    for (i, slowdown) in [1.5f64, 2.0].iter().enumerate() {
        let model = SpeedModel::Adversarial {
            fraction: 0.25,
            slowdown: *slowdown,
        };
        let bound = model
            .realized_platform(&plan.platform)
            .map(|p| p.makespan_lower_bound(plan.w_total))
            .expect("adversarial factors are floored, so the platform stays valid");
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"speeds\":\"{}\",\"analytic_lower_bound\":{}}}",
            json_escape(&model.label()),
            json_num(bound)
        ));
    }
    body.push_str("]}");
    body
}

/// `POST /jobs`: accept a multi-load job set for asynchronous execution.
/// Answers `202 Accepted` with the job id to poll; a full job table
/// (too many unfinished submissions) sheds load with 503 + Retry-After,
/// mirroring the connection queue.
fn handle_jobs_submit(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> u16 {
    test_delay(shared);
    let body = match request.body_str() {
        Some(b) => b,
        None => {
            let _ = write_error(stream, 400, "Bad Request", "body is not UTF-8", keep);
            return 400;
        }
    };
    let jobs_request = match JobsRequest::from_json_str(body) {
        Ok(r) => r,
        Err(e) if e.is_non_finite() => {
            let _ = write_error(stream, 422, "Unprocessable Entity", &e.0, keep);
            return 422;
        }
        Err(e) => {
            let _ = write_error(stream, 400, "Bad Request", &e.0, keep);
            return 400;
        }
    };
    let id = {
        let mut store = lock(&shared.jobs);
        let open = store.entries.iter().filter(|e| e.is_open()).count();
        if open >= shared.config.job_capacity {
            drop(store);
            let body = http::error_body(503, "job table full", None);
            let _ = write_response(
                stream,
                503,
                "Service Unavailable",
                "application/json",
                body.as_bytes(),
                &["Retry-After: 1"],
                keep,
            );
            return 503;
        }
        let id = store.entries.len();
        store.entries.push(JobState::Queued(Box::new(jobs_request)));
        store.run_queue.push_back(id);
        id
    };
    shared.jobs_available.notify_one();
    let body = format!(
        "{{\"api_version\":\"{}\",\"id\":{id},\"status\":\"queued\"}}",
        http::API_VERSION
    );
    let _ = write_response(
        stream,
        202,
        "Accepted",
        "application/json",
        body.as_bytes(),
        &[&format!("Location: /jobs/{id}")],
        keep,
    );
    202
}

/// `GET /jobs`: id + status of every submission, in submission order.
fn handle_jobs_list(shared: &Shared, stream: &mut TcpStream, keep: bool) -> u16 {
    let store = lock(&shared.jobs);
    let mut body = format!("{{\"api_version\":\"{}\",\"jobs\":[", http::API_VERSION);
    for (id, entry) in store.entries.iter().enumerate() {
        if id > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"id\":{id},\"status\":\"{}\"}}", entry.label()));
    }
    drop(store);
    body.push_str("]}");
    let _ = write_response(
        stream,
        200,
        "OK",
        "application/json",
        body.as_bytes(),
        &[],
        keep,
    );
    200
}

/// `GET /jobs/{id}`: poll one submission. Unfinished jobs answer their
/// status; finished jobs answer the stored result (or failure) verbatim,
/// so repeated polls are byte-identical.
fn handle_jobs_poll(shared: &Shared, stream: &mut TcpStream, id_str: &str, keep: bool) -> u16 {
    let Ok(id) = id_str.parse::<usize>() else {
        let _ = write_error(
            stream,
            400,
            "Bad Request",
            "job id must be an integer",
            keep,
        );
        return 400;
    };
    let store = lock(&shared.jobs);
    let Some(entry) = store.entries.get(id) else {
        drop(store);
        let _ = write_error(stream, 404, "Not Found", "no such job", keep);
        return 404;
    };
    match entry {
        JobState::Queued(_) | JobState::Running => {
            let body = format!(
                "{{\"api_version\":\"{}\",\"id\":{id},\"status\":\"{}\"}}",
                http::API_VERSION,
                entry.label()
            );
            drop(store);
            let _ = write_response(
                stream,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                &[],
                keep,
            );
            200
        }
        JobState::Done(body) => {
            let body = body.clone();
            drop(store);
            let _ = write_response(
                stream,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                &[],
                keep,
            );
            200
        }
        JobState::Failed(status, msg) => {
            let (status, msg) = (*status, msg.clone());
            drop(store);
            let reason = match status {
                400 => "Bad Request",
                422 => "Unprocessable Entity",
                _ => "Internal Server Error",
            };
            let _ = write_error(stream, status, reason, &msg, keep);
            status
        }
    }
}

/// The `/jobs` runner thread: pops queued submissions and executes them
/// one at a time (multi-load runs are long; the HTTP workers only submit
/// and poll). Exits when shutdown is signalled and the queue is drained.
fn jobs_loop(shared: &Shared) {
    loop {
        let (id, request) = {
            let mut store = lock(&shared.jobs);
            loop {
                if let Some(id) = store.run_queue.pop_front() {
                    let taken = std::mem::replace(&mut store.entries[id], JobState::Running);
                    let JobState::Queued(request) = taken else {
                        unreachable!("run queue holds only queued jobs");
                    };
                    break (id, request);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                store = wait_timeout(&shared.jobs_available, store, Duration::from_millis(50));
            }
        };
        let outcome = run_jobs(shared, id, &request);
        let mut store = lock(&shared.jobs);
        store.entries[id] = match outcome {
            Ok(body) => JobState::Done(body),
            Err((status, msg)) => JobState::Failed(status, msg),
        };
    }
}

/// Execute one submission; the run needs a full trace so the job-level
/// audit can check cross-job master exclusivity.
fn run_jobs(shared: &Shared, id: usize, request: &JobsRequest) -> Result<String, (u16, String)> {
    let mut spec = request.spec.clone();
    spec.config.trace_mode = TraceMode::Full;
    spec.config.audit = true;
    spec.config.max_events = spec.config.max_events.min(shared.config.max_events);
    match request.scenario.execute_jobs(&spec) {
        Ok(result) => Ok(jobs_body(id, &spec, &result)),
        Err(RunError::Build(e)) => Err((400, format!("planner: {e}"))),
        Err(RunError::Sim(SimError::EventLimitExceeded)) => Err((
            422,
            "simulation exceeded the event limit (raise max_events or shrink the run)".into(),
        )),
        Err(e) => Err((500, e.to_string())),
    }
}

fn jobs_body(id: usize, spec: &rumr::MultiRunSpec, result: &MultiRunResult) -> String {
    let mut body = String::with_capacity(1024);
    body.push_str(&format!(
        "{{\"api_version\":\"{}\",\"id\":{id},\"status\":\"done\",\"policy\":\"{}\",\"makespan\":{},\"num_chunks\":{},\"jobs\":[",
        http::API_VERSION,
        spec.policy.label(),
        json_num(result.sim.makespan),
        result.sim.num_chunks
    ));
    for (i, j) in result.jobs.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"job\":{},\"release\":{},\"size\":{},\"first_dispatch\":{},\"completion\":{},\
             \"response\":{},\"stretch\":{},\"lower_bound\":{},\"dispatched\":{},\
             \"completed\":{},\"lost\":{}}}",
            j.job,
            json_num(j.release),
            json_num(j.size),
            j.first_dispatch.map_or("null".to_string(), json_num),
            j.completion.map_or("null".to_string(), json_num),
            j.response.map_or("null".to_string(), json_num),
            j.stretch.map_or("null".to_string(), json_num),
            json_num(j.lower_bound),
            json_num(j.dispatched),
            json_num(j.completed),
            json_num(j.lost)
        ));
    }
    let f = &result.fairness;
    body.push_str(&format!(
        "],\"fairness\":{{\"completed_jobs\":{},\"max_stretch\":{},\"mean_stretch\":{},\"jain_index\":{}}}",
        f.completed_jobs,
        json_num(f.max_stretch),
        json_num(f.mean_stretch),
        json_num(f.jain_index)
    ));
    body.push_str(",\"audit_findings\":[");
    let engine_findings = result.sim.audit.as_deref().unwrap_or(&[]);
    for (i, finding) in engine_findings
        .iter()
        .chain(result.job_audit.iter())
        .enumerate()
    {
        if i > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(&json_escape(&finding.to_string()));
        body.push('"');
    }
    body.push_str("]}");
    body
}

/// `POST /simulate`: answer eligible runs from the analytic fast path,
/// else serve from the response cache if possible, else dispatch to the
/// scenario's engine shard and relay its outcome.
fn handle_simulate(shared: &Shared, stream: &mut TcpStream, sim: Box<SimulateRequest>, keep: bool) {
    let start = Instant::now();
    // Analytic fast path: deterministic model-conforming runs with an
    // exact oracle skip the cache and the shards entirely — resolving is
    // microseconds, so caching analytic answers would only pollute the
    // LRU. Build errors fall through: the shard produces the identical
    // planner 400 the engine path always has.
    if let Ok(decision) = FastPath::resolve(&sim.scenario, &sim.spec) {
        if let Some(answer) = decision.analytic() {
            shared.metrics.fastpath_analytic();
            test_delay(shared);
            if FastPath::audit_due(&sim.canonical(), shared.config.fastpath_audit_pct) {
                shared.metrics.fastpath_audited();
                let mut audit_spec = sim.spec.clone();
                audit_spec.config = effective_config(shared, &audit_spec);
                audit_analytic(shared, &sim.scenario, &audit_spec, answer);
            }
            let body = simulate_body_analytic(&sim.spec, answer);
            let _ = write_response(
                stream,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                &["X-Answer-Source: analytic"],
                keep,
            );
            shared
                .metrics
                .observe("/simulate", 200, start.elapsed().as_secs_f64());
            return;
        }
        shared.metrics.fastpath_engine();
    }
    let cache_on = shared.config.sim_cache_capacity > 0;
    let key = if cache_on {
        let key = sim.canonical();
        if let Some(body) = shared.sim_cache.get(&key) {
            shared.metrics.sim_cache_hit();
            let _ = write_response(
                stream,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                &["X-Sim-Cache: hit", "X-Answer-Source: engine"],
                keep,
            );
            shared
                .metrics
                .observe("/simulate", 200, start.elapsed().as_secs_f64());
            return;
        }
        shared.metrics.sim_cache_miss();
        Some(key)
    } else {
        None
    };

    let idx = shard_index(&sim.scenario_key(), shared.shards.len());
    shared.metrics.observe_shard(idx);
    let reply = Arc::new(Reply::default());
    shared.shards.submit(
        idx,
        ShardJob {
            sim,
            reply: Arc::clone(&reply),
        },
    );
    let status = match reply.wait(&shared.shutdown) {
        Some(outcome) => {
            if outcome.status == 200 {
                if let Some(key) = key {
                    shared.sim_cache.insert(key, Arc::new(outcome.body.clone()));
                }
                let headers: &[&str] = if cache_on {
                    &["X-Sim-Cache: miss", "X-Answer-Source: engine"]
                } else {
                    &["X-Answer-Source: engine"]
                };
                let _ = write_response(
                    stream,
                    200,
                    "OK",
                    "application/json",
                    outcome.body.as_bytes(),
                    headers,
                    keep,
                );
            } else {
                let _ = write_response(
                    stream,
                    outcome.status,
                    outcome.reason,
                    "application/json",
                    outcome.body.as_bytes(),
                    &[],
                    keep,
                );
            }
            outcome.status
        }
        None => {
            let _ = write_error(
                stream,
                503,
                "Service Unavailable",
                "server is shutting down",
                false,
            );
            503
        }
    };
    shared
        .metrics
        .observe("/simulate", status, start.elapsed().as_secs_f64());
}

/// One engine shard: pops its queue and keeps a warm runner alive across
/// same-scenario streaks (which, thanks to affinity routing, is every
/// consecutive pair of jobs that share a scenario).
fn shard_loop(shared: &Shared, idx: usize) {
    let mut pending: Option<ShardJob> = None;
    loop {
        let job = match pending.take() {
            Some(j) => j,
            None => match shared.shards.pop(idx, &shared.shutdown) {
                Some(j) => j,
                None => return,
            },
        };
        pending = shard_streak(shared, idx, job);
    }
}

/// Execute `job` and then keep pulling this shard's queue while jobs
/// decode to the same scenario; returns the first non-matching job so the
/// caller can start a new streak (new runner) around it.
fn shard_streak(shared: &Shared, idx: usize, job: ShardJob) -> Option<ShardJob> {
    let scenario = job.sim.scenario.clone();
    let mut runner = scenario.runner(effective_config(shared, &job.sim.spec));
    let reply = Arc::clone(&job.reply);
    reply.set(simulate_outcome(shared, *job.sim, &mut runner));
    loop {
        let job = shared.shards.pop(idx, &shared.shutdown)?;
        if same_scenario(&scenario, &job.sim.scenario) {
            let reply = Arc::clone(&job.reply);
            reply.set(simulate_outcome(shared, *job.sim, &mut runner));
        } else {
            return Some(job);
        }
    }
}

/// Run one `/simulate` request on the shard's warm runner and produce the
/// outcome the HTTP worker will write.
fn simulate_outcome(
    shared: &Shared,
    mut sim: SimulateRequest,
    runner: &mut rumr::ScenarioRunner<'_>,
) -> Outcome {
    // On the shard so it emulates engine time: serialized per shard
    // (cache hits skip it), parallel across shards and processes.
    test_delay(shared);
    // Reuse a cached prototype when /plan has already solved this
    // (platform, workload, scheduler) triple.
    if sim.spec.prototype.is_none() {
        if let Some(cached) = shared.cache.get(&sim.plan_key()) {
            sim.spec = sim.spec.with_prototype(cached.prototype.clone());
        }
    }
    let mut spec = sim.spec;
    spec.config = effective_config(shared, &spec);

    match run_reps(runner, &spec) {
        Ok(cols) => {
            // Per-run robustness reports when the request revealed speeds
            // (clairvoyant twins are replanned on the realized platform).
            let robustness: Vec<RobustnessReport> = if spec.config.speeds.is_active() {
                spec.seeds()
                    .zip(cols.makespan.iter())
                    .filter_map(|(seed, &m)| runner.scenario().robustness(&spec, seed, m))
                    .collect()
            } else {
                Vec::new()
            };
            Outcome {
                status: 200,
                reason: "OK",
                body: simulate_body(&spec, &cols, &robustness),
            }
        }
        Err(RunError::Build(e)) => Outcome {
            status: 400,
            reason: "Bad Request",
            body: http::error_body(400, &format!("planner: {e}"), None),
        },
        Err(RunError::Sim(SimError::EventLimitExceeded)) => Outcome {
            status: 422,
            reason: "Unprocessable Entity",
            body: http::error_body(
                422,
                "simulation exceeded the event limit (raise max_events or shrink the run)",
                None,
            ),
        },
        Err(e) => Outcome {
            status: 500,
            reason: "Internal Server Error",
            body: http::error_body(500, &e.to_string(), None),
        },
    }
}

/// Execute the spec's whole repetition batch as one arena-backed
/// column pass on the shard's warm runner: one scheduler prototype solve
/// and zero per-repetition result allocations, instead of the old
/// execute-per-seed loop.
fn run_reps(
    runner: &mut rumr::ScenarioRunner<'_>,
    spec: &rumr::RunSpec,
) -> Result<RepColumns, RunError> {
    let workers = runner.scenario().platform.num_workers();
    let mut cols = RepColumns::with_capacity(spec.reps as usize, workers);
    runner.execute_batch(spec, &mut cols)?;
    Ok(cols)
}

fn simulate_body(
    spec: &rumr::RunSpec,
    cols: &RepColumns,
    robustness: &[RobustnessReport],
) -> String {
    let mut body = String::with_capacity(512);
    body.push_str("{\"api_version\":\"");
    body.push_str(http::API_VERSION);
    body.push_str("\",\"source\":\"engine\",\"runs\":[");
    for i in 0..cols.len() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"seed\":{},\"makespan\":{},\"num_chunks\":{},\"completed_work\":{},\"conservation_residual\":{}",
            spec.seed + i as u64,
            json_num(cols.makespan[i]),
            cols.num_chunks[i],
            json_num(cols.completed_work[i]),
            json_num(cols.conservation_residual(i))
        ));
        if let Some(m) = &cols.metrics[i] {
            body.push_str(&format!(
                ",\"metrics\":{{\"trace_events\":{},\"link_utilization\":{},\"num_gaps\":{}}}",
                m.trace_events,
                json_num(m.link_utilization(cols.makespan[i])),
                m.num_gaps
            ));
        }
        if let Some(rb) = robustness.get(i) {
            body.push_str(&format!(
                ",\"robustness\":{{\"ratio\":{},\"clairvoyant_makespan\":{},\"replanned_makespan\":{},\"analytic_lower_bound\":{}}}",
                json_num(rb.ratio),
                json_num(rb.clairvoyant_makespan),
                rb.replanned_makespan.map_or("null".to_string(), json_num),
                json_num(rb.analytic_lower_bound)
            ));
        }
        body.push_str(",\"audit_findings\":[");
        if let Some(findings) = &cols.audit[i] {
            for (j, f) in findings.iter().enumerate() {
                if j > 0 {
                    body.push(',');
                }
                body.push('"');
                body.push_str(&json_escape(&f.to_string()));
                body.push('"');
            }
        }
        body.push_str("]}");
    }
    body.push_str(&format!(
        "],\"mean_makespan\":{},\"scheduler\":\"{}\"}}",
        json_num(cols.mean_makespan()),
        json_escape(&spec.kind.label())
    ));
    body
}

/// The analytic `/simulate` body: same top-level shape as the engine
/// body, one `runs` entry per requested seed. The run is deterministic —
/// that is what made it eligible — so every entry carries the same
/// closed-form makespan, `completed_work` is the oracle's planned total,
/// the conservation residual is identically zero, and the engine-only
/// fields (`num_chunks`, `metrics`) are absent.
fn simulate_body_analytic(spec: &rumr::RunSpec, answer: &FastPathAnswer) -> String {
    let mut body = String::with_capacity(256);
    body.push_str("{\"api_version\":\"");
    body.push_str(http::API_VERSION);
    body.push_str("\",\"source\":\"analytic\",\"runs\":[");
    for (i, seed) in spec.seeds().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"seed\":{seed},\"makespan\":{},\"completed_work\":{},\
             \"conservation_residual\":0,\"audit_findings\":[]}}",
            json_num(answer.makespan),
            json_num(answer.planned_work)
        ));
    }
    body.push_str(&format!(
        "],\"mean_makespan\":{},\"scheduler\":\"{}\"}}",
        json_num(answer.makespan),
        json_escape(&spec.kind.label())
    ));
    body
}
