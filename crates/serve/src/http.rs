//! A minimal HTTP/1.1 subset over `std::net` streams.
//!
//! Supports exactly what the service needs: one request per connection
//! (`Connection: close` on every response), `Content-Length` bodies, an
//! 8 KiB header cap and a 1 MiB body cap. Not a general HTTP
//! implementation — chunked transfer, keep-alive, and continuation lines
//! are all rejected or ignored by design.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path (query string stripped), and body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without any `?query` suffix.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Malformed request line/headers, or over a size cap; the given
    /// status/reason should be written back.
    Bad(u16, &'static str, String),
    /// The socket failed or timed out mid-read; nothing can be written.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one request from the stream. The caller is responsible for
/// setting read timeouts on the stream beforehand.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(
                431,
                "Request Header Fields Too Large",
                "request head exceeds 8 KiB".into(),
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before request head",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Bad(400, "Bad Request", "request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Bad(400, "Bad Request", "empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Bad(400, "Bad Request", "missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ReadError::Bad(400, "Bad Request", "invalid Content-Length".into())
                })?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(ReadError::Bad(
                    501,
                    "Not Implemented",
                    "transfer encodings are not supported".into(),
                ));
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Bad(
            413,
            "Payload Too Large",
            "request body exceeds 1 MiB".into(),
        ));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write a complete response and flush. `extra_headers` lines must be
/// pre-formatted without the trailing CRLF (e.g. `"Retry-After: 1"`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[&str],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Convenience: a JSON error body `{"error": "..."}` with the given status.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> io::Result<()> {
    let body = format!(
        "{{\"error\":\"{}\"}}",
        dls_experiments::json::json_escape(message)
    );
    write_response(
        stream,
        status,
        reason,
        "application/json",
        body.as_bytes(),
        &[],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_head_boundary() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
