//! A minimal HTTP/1.1 subset over `std::net` streams.
//!
//! Supports exactly what the service needs: `Content-Length` bodies, an
//! 8 KiB header cap, a 1 MiB body cap, and persistent connections.
//! HTTP/1.1 requests default to keep-alive (`Connection: close` opts
//! out); HTTP/1.0 requests default to close (`Connection: keep-alive`
//! opts in). Requests on one connection are handled strictly in order —
//! a client may pipeline (write several requests before reading), and
//! responses come back in request order with `Content-Length` framing.
//! Chunked transfer encoding and continuation lines are rejected or
//! ignored by design.
//!
//! Bytes a client sends beyond the current request's body (the next
//! pipelined request) are preserved in the caller-owned `carry` buffer
//! and consumed by the next [`read_request`] call; they are never
//! silently dropped.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path (query string stripped), body, and the
/// connection disposition it asked for.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without any `?query` suffix.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by a `Connection` header).
    pub keep_alive: bool,
}

impl Request {
    /// Body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Malformed request line/headers, or over a size cap; the given
    /// status/reason should be written back, then the connection closed
    /// (framing can no longer be trusted).
    Bad(u16, &'static str, String),
    /// The socket failed or timed out mid-request; nothing can be
    /// written.
    Io(io::Error),
    /// The peer closed the connection cleanly between requests (no
    /// buffered or partial request bytes). Not an error on a keep-alive
    /// connection — just the end of it.
    Closed,
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one request from the stream. `carry` holds bytes already read
/// past the previous request's body (pipelined input); on return it holds
/// the bytes past *this* request's body. Pass the same buffer for every
/// request on a connection. The caller is responsible for setting read
/// timeouts on the stream beforehand.
pub fn read_request(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Result<Request, ReadError> {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(
                431,
                "Request Header Fields Too Large",
                "request head exceeds 8 KiB".into(),
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before request head",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Bad(400, "Bad Request", "request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Bad(400, "Bad Request", "empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Bad(400, "Bad Request", "missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    // HTTP/1.1 defaults to persistent connections; everything else (1.0,
    // or no version token at all) defaults to close.
    let mut keep_alive = parts.next() == Some("HTTP/1.1");

    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ReadError::Bad(400, "Bad Request", "invalid Content-Length".into())
                })?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(ReadError::Bad(
                    501,
                    "Not Implemented",
                    "transfer encodings are not supported".into(),
                ));
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Bad(
            413,
            "Payload Too Large",
            "request body exceeds 1 MiB".into(),
        ));
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = buf[body_start..total].to_vec();
    // Anything past this request's body is the start of the next
    // pipelined request — keep it for the next read_request call.
    carry.extend_from_slice(&buf[total..]);

    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The declared `Content-Length` of a raw request head (everything before
/// the blank line), if present and parseable. Used by the load-shedding
/// path to drain exactly the body the client is sending before
/// responding.
pub(crate) fn declared_content_length(head: &[u8]) -> usize {
    let Ok(head) = std::str::from_utf8(head) else {
        return 0;
    };
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                return value.trim().parse().unwrap_or(0);
            }
        }
    }
    0
}

/// The service's API version tag: sent as the `X-API-Version` header on
/// every response and as the `api_version` field of every JSON body.
/// Endpoints are also reachable under a `/v1/...` path prefix; see
/// `docs/SERVICE.md` for the stability contract.
pub const API_VERSION: &str = "v1";

/// Stable machine-readable error code for an HTTP failure status. Part of
/// the v1 error contract: clients dispatch on `code`, not on the
/// free-form `error` text.
pub fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        413 => "payload_too_large",
        422 => "unprocessable",
        431 => "headers_too_large",
        501 => "not_implemented",
        503 => "unavailable",
        _ => "internal",
    }
}

/// The unified JSON error body (v1 contract):
/// `{"api_version", "code", "error", "detail"}`. `code` is the stable
/// machine-readable slug for the status, `error` the one-line human
/// message, `detail` an optional longer hint (`null` when absent).
pub fn error_body(status: u16, message: &str, detail: Option<&str>) -> String {
    let escape = dls_experiments::json::json_escape;
    let detail = match detail {
        Some(d) => format!("\"{}\"", escape(d)),
        None => "null".to_string(),
    };
    format!(
        "{{\"api_version\":\"{API_VERSION}\",\"code\":\"{}\",\"error\":\"{}\",\"detail\":{detail}}}",
        error_code(status),
        escape(message)
    )
}

/// Write a complete response and flush. `extra_headers` lines must be
/// pre-formatted without the trailing CRLF (e.g. `"Retry-After: 1"`).
/// `keep_alive` selects the `Connection` header; the status line, body,
/// and every other header are byte-identical either way.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[&str],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\nX-API-Version: {API_VERSION}\r\n",
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write: head + body in separate segments would trip the
    // Nagle / delayed-ACK interaction (~40 ms per response).
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body);
    stream.write_all(&wire)?;
    stream.flush()
}

/// Convenience: the unified JSON error body (see [`error_body`]) with the
/// given status.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response(
        stream,
        status,
        reason,
        "application/json",
        error_body(status, message, None).as_bytes(),
        &[],
        keep_alive,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_head_boundary() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn declared_content_length_parses_head() {
        assert_eq!(
            declared_content_length(b"POST /x HTTP/1.1\r\nContent-Length: 42\r\nHost: a"),
            42
        );
        assert_eq!(
            declared_content_length(b"POST /x HTTP/1.1\r\ncontent-length:7"),
            7
        );
        assert_eq!(declared_content_length(b"GET / HTTP/1.1\r\nHost: a"), 0);
        assert_eq!(
            declared_content_length(b"POST /x HTTP/1.1\r\nContent-Length: nope"),
            0
        );
    }

    #[test]
    fn pipelined_requests_round_trip_through_carry() {
        // Two requests written back-to-back: the first read must stop at
        // the first body's end and leave the second request in `carry`.
        let wire = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcPOST /b HTTP/1.1\r\nConnection: close\r\nContent-Length: 2\r\n\r\nxy";
        // Drive the parser through a loopback socket so the real
        // `read_request` path (TcpStream reads) is exercised.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(wire).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut carry = Vec::new();

        let first = read_request(&mut stream, &mut carry).expect("first request");
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"abc");
        assert!(first.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(carry.starts_with(b"POST /b"), "second request preserved");

        let second = read_request(&mut stream, &mut carry).expect("second request");
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"xy");
        assert!(!second.keep_alive, "Connection: close honored");
        assert!(carry.is_empty());

        // The peer is done writing; a further read sees a clean close.
        writer.join().unwrap();
        match read_request(&mut stream, &mut carry) {
            Err(ReadError::Closed) => {}
            other => panic!("expected clean close, got {other:?}"),
        }
    }
}
