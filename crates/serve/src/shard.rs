//! Engine shards: per-core simulation workers with scenario affinity.
//!
//! `/simulate` execution no longer happens on the HTTP worker that parsed
//! the request. Instead each decoded request is routed — by a stable hash
//! of its *scenario* (platform + workload + error model) — to one of N
//! engine shards, each a dedicated thread owning a warm
//! [`rumr::ScenarioRunner`]. Same-scenario requests always land on the
//! same shard, so they run on the same engine allocations regardless of
//! which connection or HTTP worker carried them; this generalizes the old
//! per-worker "reuse streak" (which only helped when consecutive requests
//! on one worker happened to match) into deterministic affinity.
//!
//! This module is only the plumbing: per-shard bounded queues and a
//! one-shot reply slot. The simulation logic lives in
//! [`crate::server`], which spawns the shard threads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::api::SimulateRequest;
use crate::sync::{lock, wait_timeout};

/// A `/simulate` request in flight to a shard, with the slot its result
/// must be delivered to.
pub(crate) struct ShardJob {
    /// The decoded request.
    pub sim: Box<SimulateRequest>,
    /// Where the shard deposits the outcome.
    pub reply: std::sync::Arc<Reply>,
}

/// What a shard computed for one request: everything the HTTP worker
/// needs to write the response.
pub(crate) struct Outcome {
    /// HTTP status code.
    pub status: u16,
    /// HTTP reason phrase.
    pub reason: &'static str,
    /// Response body (JSON for every status the shard produces).
    pub body: String,
}

/// A one-shot reply slot: the HTTP worker blocks on it while the shard
/// computes.
#[derive(Default)]
pub(crate) struct Reply {
    slot: Mutex<Option<Outcome>>,
    ready: Condvar,
}

impl Reply {
    /// Deposit the outcome and wake the waiting worker.
    pub fn set(&self, outcome: Outcome) {
        *lock(&self.slot) = Some(outcome);
        self.ready.notify_all();
    }

    /// Block until the outcome arrives. During shutdown, gives an
    /// in-flight shard a short grace period and then gives up (`None`) so
    /// a worker never deadlocks on a shard that already exited.
    pub fn wait(&self, shutdown: &AtomicBool) -> Option<Outcome> {
        let mut guard = lock(&self.slot);
        loop {
            if let Some(outcome) = guard.take() {
                return Some(outcome);
            }
            if shutdown.load(Ordering::SeqCst) {
                guard = wait_timeout(&self.ready, guard, Duration::from_millis(250));
                return guard.take();
            }
            guard = wait_timeout(&self.ready, guard, Duration::from_millis(50));
        }
    }
}

struct ShardQueue {
    queue: Mutex<VecDeque<ShardJob>>,
    available: Condvar,
}

/// The shard queues: one bounded-by-construction FIFO per engine shard.
/// (The connection queue upstream already bounds in-flight work; shard
/// queues only ever hold requests whose connections are being served.)
pub(crate) struct ShardPool {
    shards: Vec<ShardQueue>,
}

impl ShardPool {
    /// A pool of `n` shard queues (`n >= 1`).
    pub fn new(n: usize) -> Self {
        ShardPool {
            shards: (0..n.max(1))
                .map(|_| ShardQueue {
                    queue: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Enqueue a job on shard `idx` and wake its thread.
    pub fn submit(&self, idx: usize, job: ShardJob) {
        let shard = &self.shards[idx];
        lock(&shard.queue).push_back(job);
        shard.available.notify_all();
    }

    /// Pop the next job for shard `idx`, blocking until one arrives.
    /// Returns `None` only when shutdown is signalled *and* the queue is
    /// drained — queued jobs always get answered.
    pub fn pop(&self, idx: usize, shutdown: &AtomicBool) -> Option<ShardJob> {
        let shard = &self.shards[idx];
        let mut queue = lock(&shard.queue);
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = wait_timeout(&shard.available, queue, Duration::from_millis(50));
        }
    }

    /// Wake every shard thread (shutdown path).
    pub fn notify_all(&self) {
        for shard in &self.shards {
            shard.available.notify_all();
        }
    }
}

/// FNV-1a hash of a routing key.
fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a scenario key routes to: a stable function of the key only,
/// so every worker sends the same scenario to the same shard.
pub(crate) fn shard_index(key: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (fnv1a(key.as_bytes()) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for shards in 1..8 {
            for key in ["a", "b", "scenario-key", ""] {
                let idx = shard_index(key, shards);
                assert!(idx < shards);
                assert_eq!(idx, shard_index(key, shards), "routing must be stable");
            }
        }
        // Distinct keys spread across shards (not all on one).
        let hits: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| shard_index(&format!("key-{i}"), 4))
            .collect();
        assert!(
            hits.len() > 1,
            "64 keys should hit more than one of 4 shards"
        );
    }
}
