//! The LRU plan cache.
//!
//! `/plan` is a pure function of (platform, workload, scheduler), and the
//! planner solve behind it is the expensive part of a request. The cache
//! stores, per canonical request key, the response body *and* the solved
//! [`SchedulerPrototype`] — so a hit answers `/plan` without touching the
//! planner, and `/simulate` of a cached (platform, workload, scheduler)
//! triple skips its planner solve too (prototypes stamp out fresh
//! schedulers via state clone).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rumr::SchedulerPrototype;

/// A cached `/plan` result: the solved prototype plus the exact response
/// body served for it.
#[derive(Clone)]
pub struct CachedPlan {
    /// Solved scheduler, cloneable into fresh instances.
    pub prototype: SchedulerPrototype,
    /// The JSON body `/plan` responds with.
    pub body: String,
}

/// A thread-safe LRU map from canonical request key to [`CachedPlan`].
///
/// Capacity 0 disables caching (every `get` misses, `insert` is a no-op).
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<String, Arc<CachedPlan>>,
    /// Keys ordered least-recently-used first.
    order: Vec<String>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            capacity,
        }
    }

    /// Look up a plan, marking it most-recently-used on hit.
    pub fn get(&self, key: &str) -> Option<Arc<CachedPlan>> {
        let mut inner = self.inner.lock().unwrap();
        let hit = inner.map.get(key).cloned()?;
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            let k = inner.order.remove(pos);
            inner.order.push(k);
        }
        Some(hit)
    }

    /// Insert a plan, evicting the least-recently-used entry at capacity.
    pub fn insert(&self, key: String, plan: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(key.clone(), plan).is_none() {
            inner.order.push(key);
            if inner.order.len() > self.capacity {
                let evicted = inner.order.remove(0);
                inner.map.remove(&evicted);
            }
        } else if let Some(pos) = inner.order.iter().position(|k| *k == key) {
            let k = inner.order.remove(pos);
            inner.order.push(k);
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumr::{HomogeneousParams, SchedulerKind};

    fn plan(tag: &str) -> Arc<CachedPlan> {
        let platform = HomogeneousParams::table1(4, 1.5, 0.2, 0.1).build().unwrap();
        let prototype = SchedulerKind::Umr
            .prototype(&platform, 1000.0)
            .expect("solvable");
        Arc::new(CachedPlan {
            prototype,
            body: tag.to_string(),
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), plan("a"));
        cache.insert("b".into(), plan("b"));
        assert!(cache.get("a").is_some()); // refresh "a"; "b" is now LRU
        cache.insert("c".into(), plan("c"));
        assert!(cache.get("b").is_none(), "LRU entry should be evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), plan("a"));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }
}
