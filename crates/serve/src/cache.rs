//! Canonical-key LRU caches: the `/plan` prototype cache and the
//! `/simulate` response cache.
//!
//! `/plan` is a pure function of (platform, workload, scheduler), and the
//! planner solve behind it is the expensive part of a request. The plan
//! cache stores, per canonical request key, the response body *and* the
//! solved [`SchedulerPrototype`] — so a hit answers `/plan` without
//! touching the planner, and `/simulate` of a cached (platform, workload,
//! scheduler) triple skips its planner solve too (prototypes stamp out
//! fresh schedulers via state clone).
//!
//! `/simulate` responses are byte-deterministic in the canonicalized
//! request (the engine is deterministic in (scenario, spec, seed), and
//! the service pins the effective configuration), so caching the whole
//! response body under [`crate::api::SimulateRequest::canonical`] is
//! sound: a hit serves exactly the bytes a fresh run would produce.
//!
//! Both caches are instances of one thread-safe string-keyed [`LruCache`]
//! with an eviction counter surfaced on `/metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rumr::SchedulerPrototype;

use crate::sync::lock;

/// A cached `/plan` result: the solved prototype plus the exact response
/// body served for it.
#[derive(Clone)]
pub struct CachedPlan {
    /// Solved scheduler, cloneable into fresh instances.
    pub prototype: SchedulerPrototype,
    /// The JSON body `/plan` responds with.
    pub body: String,
    /// How the body's makespan was produced — `"analytic"` (oracle closed
    /// form) or `"engine"` (full-trace DES run). Replayed as the
    /// `X-Answer-Source` header on cache hits.
    pub source: &'static str,
}

/// The `/plan` cache: canonical request key → prototype + body.
pub type PlanCache = LruCache<Arc<CachedPlan>>;

/// The `/simulate` response cache: canonical request key → response body.
pub type SimCache = LruCache<Arc<String>>;

/// A thread-safe LRU map from canonical request key to a cheaply
/// cloneable value.
///
/// Capacity 0 disables caching (every `get` misses, `insert` is a no-op).
/// Locks recover from poisoning (see [`crate::sync`]).
pub struct LruCache<V: Clone> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    evictions: AtomicU64,
}

struct Inner<V> {
    map: HashMap<String, V>,
    /// Keys ordered least-recently-used first.
    order: Vec<String>,
}

impl<V: Clone> LruCache<V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            capacity,
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up an entry, marking it most-recently-used on hit.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut inner = lock(&self.inner);
        let hit = inner.map.get(key).cloned()?;
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            let k = inner.order.remove(pos);
            inner.order.push(k);
        }
        Some(hit)
    }

    /// Insert an entry, evicting the least-recently-used one at capacity.
    pub fn insert(&self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        if inner.map.insert(key.clone(), value).is_none() {
            inner.order.push(key);
            if inner.order.len() > self.capacity {
                let evicted = inner.order.remove(0);
                inner.map.remove(&evicted);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        } else if let Some(pos) = inner.order.iter().position(|k| *k == key) {
            let k = inner.order.remove(pos);
            inner.order.push(k);
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the LRU policy so far (not replaced-in-place
    /// updates — genuine capacity evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumr::{HomogeneousParams, SchedulerKind};

    fn plan(tag: &str) -> Arc<CachedPlan> {
        let platform = HomogeneousParams::table1(4, 1.5, 0.2, 0.1).build().unwrap();
        let prototype = SchedulerKind::Umr
            .prototype(&platform, 1000.0)
            .expect("solvable");
        Arc::new(CachedPlan {
            prototype,
            body: tag.to_string(),
            source: "engine",
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), plan("a"));
        cache.insert("b".into(), plan("b"));
        assert!(cache.get("a").is_some()); // refresh "a"; "b" is now LRU
        cache.insert("c".into(), plan("c"));
        assert!(cache.get("b").is_none(), "LRU entry should be evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1, "one genuine eviction");

        // Re-inserting an existing key is an update, not an eviction.
        cache.insert("a".into(), plan("a2"));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get("a").unwrap().body, "a2");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), plan("a"));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn sim_cache_stores_bodies() {
        let cache = SimCache::new(1);
        cache.insert("k1".into(), Arc::new("body-1".to_string()));
        assert_eq!(cache.get("k1").unwrap().as_str(), "body-1");
        cache.insert("k2".into(), Arc::new("body-2".to_string()));
        assert!(cache.get("k1").is_none());
        assert_eq!(cache.evictions(), 1);
    }
}
