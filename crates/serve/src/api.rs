//! The service's JSON request/response codec.
//!
//! Everything the wire speaks maps onto the core types: a `/plan` body
//! decodes to a [`PlanRequest`], a `/simulate` body to a
//! [`SimulateRequest`] (a [`Scenario`] plus a [`RunSpec`]). Encoding and
//! decoding are inverses over the supported surface, and
//! [`Json::canonical`] of an encoded request is the service's cache key —
//! the pinned round-trip tests in this module keep that contract honest.
//!
//! Decoders are tolerant of omitted optional fields (they fall back to the
//! same defaults the Rust builders use) and strict about types: a field of
//! the wrong JSON type is a 400, not a silent default.

use dls_experiments::json::{parse_json, Json};
use rumr::sim::FaultAction;
use rumr::{
    ErrorModel, FaultModel, FaultPlan, HomogeneousParams, MultiJob, MultiPolicy, MultiRunSpec,
    Platform, PoissonFaults, QueueBackend, RecoveryConfig, RumrConfig, RunSpec, Scenario,
    SchedulerKind, SimConfig, SpeedModel, TraceMode, WorkerSpec,
};

/// A request the codec rejected, with a human-readable reason (the server
/// returns it in a 400 body).
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError(pub String);

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ApiError {}

/// The exact message produced when a request body contains a non-finite
/// number. The server maps this — and only this — decode failure to `422
/// Unprocessable Entity`: the body is well-formed JSON (syntactically
/// fine, hence not a 400) but can never describe a valid simulation.
pub const NON_FINITE_MSG: &str = "request contains a non-finite number (NaN or infinity overflow)";

impl ApiError {
    /// True when the request was rejected for containing non-finite
    /// numbers; the server answers 422 instead of 400.
    pub fn is_non_finite(&self) -> bool {
        self.0 == NON_FINITE_MSG
    }
}

/// Parse a request body and reject it wholesale if any number anywhere in
/// it is non-finite (JSON has no NaN/inf literals, but `1e999` parses to
/// f64 infinity), before any field reaches `SimConfig` or the platform.
fn parse_finite_json(body: &str) -> Result<Json, ApiError> {
    let v = parse_json(body).map_err(ApiError)?;
    if !v.all_finite() {
        return err(NON_FINITE_MSG);
    }
    Ok(v)
}

fn err<T>(msg: impl Into<String>) -> Result<T, ApiError> {
    Err(ApiError(msg.into()))
}

fn num_field(obj: &Json, key: &str) -> Result<f64, ApiError> {
    match obj.get(key) {
        Some(v) => v
            .num()
            .ok_or_else(|| ApiError(format!("field '{key}' must be a number"))),
        None => err(format!("missing field '{key}'")),
    }
}

fn opt_num_field(obj: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .num()
            .map(Some)
            .ok_or_else(|| ApiError(format!("field '{key}' must be a number or null"))),
    }
}

fn usize_field_or(obj: &Json, key: &str, default: usize) -> Result<usize, ApiError> {
    match opt_num_field(obj, key)? {
        None => Ok(default),
        Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= usize::MAX as f64 => Ok(x as usize),
        Some(_) => err(format!("field '{key}' must be a non-negative integer")),
    }
}

fn u64_field_or(obj: &Json, key: &str, default: u64) -> Result<u64, ApiError> {
    match opt_num_field(obj, key)? {
        None => Ok(default),
        Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(x as u64),
        Some(_) => err(format!("field '{key}' must be a non-negative integer")),
    }
}

fn bool_field_or(obj: &Json, key: &str, default: bool) -> Result<bool, ApiError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .bool()
            .ok_or_else(|| ApiError(format!("field '{key}' must be a boolean"))),
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    match obj.get(key) {
        Some(v) => v
            .str()
            .ok_or_else(|| ApiError(format!("field '{key}' must be a string"))),
        None => err(format!("missing field '{key}'")),
    }
}

fn opt_json_num(x: Option<f64>) -> Json {
    match x {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

fn rumr_config_fields(c: &RumrConfig) -> Vec<(&'static str, Json)> {
    vec![
        ("error_estimate", opt_json_num(c.error_estimate)),
        ("phase1_fraction", opt_json_num(c.phase1_fraction)),
        ("out_of_order", Json::Bool(c.out_of_order)),
        ("factor", Json::Num(c.factor)),
        ("error_aware_bound", Json::Bool(c.error_aware_bound)),
    ]
}

fn decode_rumr_config(v: &Json) -> Result<RumrConfig, ApiError> {
    let defaults = RumrConfig::default();
    Ok(RumrConfig {
        error_estimate: opt_num_field(v, "error_estimate")?,
        phase1_fraction: opt_num_field(v, "phase1_fraction")?,
        out_of_order: bool_field_or(v, "out_of_order", defaults.out_of_order)?,
        factor: opt_num_field(v, "factor")?.unwrap_or(defaults.factor),
        error_aware_bound: bool_field_or(v, "error_aware_bound", defaults.error_aware_bound)?,
    })
}

/// Encode a [`SchedulerKind`] as `{"kind": "...", ...params}`. RUMR
/// variants always carry their full configuration so the encoding is
/// self-contained.
pub fn encode_scheduler(kind: &SchedulerKind) -> Json {
    let mut fields: Vec<(&str, Json)>;
    match kind {
        SchedulerKind::Rumr(c) => {
            fields = vec![("kind", Json::Str("rumr".into()))];
            fields.extend(rumr_config_fields(c));
        }
        SchedulerKind::HetRumr(c) => {
            fields = vec![("kind", Json::Str("het_rumr".into()))];
            fields.extend(rumr_config_fields(c));
        }
        SchedulerKind::Umr => fields = vec![("kind", Json::Str("umr".into()))],
        SchedulerKind::Mi { installments } => {
            fields = vec![
                ("kind", Json::Str("mi".into())),
                ("installments", Json::Num(*installments as f64)),
            ]
        }
        SchedulerKind::Factoring => fields = vec![("kind", Json::Str("factoring".into()))],
        SchedulerKind::Fsc { error } => {
            fields = vec![
                ("kind", Json::Str("fsc".into())),
                ("error", Json::Num(*error)),
            ]
        }
        SchedulerKind::EqualStatic => fields = vec![("kind", Json::Str("equal_static".into()))],
        SchedulerKind::SelfScheduling { unit } => {
            fields = vec![
                ("kind", Json::Str("self_scheduling".into())),
                ("unit", Json::Num(*unit)),
            ]
        }
        SchedulerKind::HetUmr => fields = vec![("kind", Json::Str("het_umr".into()))],
        SchedulerKind::AdaptiveRumr => fields = vec![("kind", Json::Str("adaptive_rumr".into()))],
        SchedulerKind::OneRound => fields = vec![("kind", Json::Str("one_round".into()))],
        SchedulerKind::Gss => fields = vec![("kind", Json::Str("gss".into()))],
        SchedulerKind::Tss => fields = vec![("kind", Json::Str("tss".into()))],
    }
    obj(fields)
}

/// Decode a scheduler object (see [`encode_scheduler`] for the shape).
pub fn decode_scheduler(v: &Json) -> Result<SchedulerKind, ApiError> {
    match str_field(v, "kind")? {
        "rumr" => Ok(SchedulerKind::Rumr(decode_rumr_config(v)?)),
        "het_rumr" => Ok(SchedulerKind::HetRumr(decode_rumr_config(v)?)),
        "umr" => Ok(SchedulerKind::Umr),
        "mi" => Ok(SchedulerKind::Mi {
            installments: usize_field_or(v, "installments", 2)?,
        }),
        "factoring" => Ok(SchedulerKind::Factoring),
        "fsc" => Ok(SchedulerKind::Fsc {
            error: num_field(v, "error")?,
        }),
        "equal_static" => Ok(SchedulerKind::EqualStatic),
        "self_scheduling" => Ok(SchedulerKind::SelfScheduling {
            unit: num_field(v, "unit")?,
        }),
        "het_umr" => Ok(SchedulerKind::HetUmr),
        "adaptive_rumr" => Ok(SchedulerKind::AdaptiveRumr),
        "one_round" => Ok(SchedulerKind::OneRound),
        "gss" => Ok(SchedulerKind::Gss),
        "tss" => Ok(SchedulerKind::Tss),
        other => err(format!("unknown scheduler kind '{other}'")),
    }
}

// ---------------------------------------------------------------------------
// Platform and error model
// ---------------------------------------------------------------------------

/// Encode a platform as its explicit worker list (the canonical form; the
/// `homogeneous` request shorthand expands to this).
pub fn encode_platform(platform: &Platform) -> Json {
    let workers = platform
        .workers()
        .iter()
        .map(|w| {
            obj(vec![
                ("speed", Json::Num(w.speed)),
                ("bandwidth", Json::Num(w.bandwidth)),
                ("comp_latency", Json::Num(w.comp_latency)),
                ("net_latency", Json::Num(w.net_latency)),
                ("transfer_latency", Json::Num(w.transfer_latency)),
            ])
        })
        .collect();
    obj(vec![("workers", Json::Arr(workers))])
}

/// Decode a platform: either `{"workers": [...]}` (explicit) or
/// `{"homogeneous": {"n", "ratio", "comp_latency", "net_latency"}}` (the
/// paper's Table 1 shorthand: speed 1, bandwidth `ratio·n`).
pub fn decode_platform(v: &Json) -> Result<Platform, ApiError> {
    if let Some(h) = v.get("homogeneous") {
        let n = usize_field_or(h, "n", 0)?;
        if n == 0 {
            return err("homogeneous platform needs 'n' >= 1");
        }
        let params = HomogeneousParams::table1(
            n,
            num_field(h, "ratio")?,
            num_field(h, "comp_latency")?,
            num_field(h, "net_latency")?,
        );
        return params
            .build()
            .map_err(|e| ApiError(format!("platform: {e}")));
    }
    let workers = v
        .get("workers")
        .and_then(Json::arr)
        .ok_or_else(|| ApiError("platform needs 'workers' (array) or 'homogeneous'".into()))?;
    let specs = workers
        .iter()
        .map(|w| {
            Ok(WorkerSpec {
                speed: num_field(w, "speed")?,
                bandwidth: num_field(w, "bandwidth")?,
                comp_latency: num_field(w, "comp_latency")?,
                net_latency: num_field(w, "net_latency")?,
                transfer_latency: opt_num_field(w, "transfer_latency")?.unwrap_or(0.0),
            })
        })
        .collect::<Result<Vec<_>, ApiError>>()?;
    Platform::new(specs).map_err(|e| ApiError(format!("platform: {e}")))
}

/// Encode an error model as `{"kind": "...", "error": x}`.
pub fn encode_error_model(model: &ErrorModel) -> Json {
    let (kind, error) = match model {
        ErrorModel::None => ("none", None),
        ErrorModel::TruncatedNormal { error } => ("normal", Some(*error)),
        ErrorModel::TruncatedNormalInverse { error } => ("inverse", Some(*error)),
        ErrorModel::Uniform { error } => ("uniform", Some(*error)),
    };
    let mut fields = vec![("kind", Json::Str(kind.into()))];
    if let Some(e) = error {
        fields.push(("error", Json::Num(e)));
    }
    obj(fields)
}

/// Decode an error model; a missing `error` field means 0 and `kind:
/// "none"` ignores it.
pub fn decode_error_model(v: &Json) -> Result<ErrorModel, ApiError> {
    let error = opt_num_field(v, "error")?.unwrap_or(0.0);
    match str_field(v, "kind")? {
        "none" => Ok(ErrorModel::None),
        "normal" => Ok(ErrorModel::TruncatedNormal { error }),
        "inverse" => Ok(ErrorModel::TruncatedNormalInverse { error }),
        "uniform" => Ok(ErrorModel::Uniform { error }),
        other => err(format!("unknown error model '{other}'")),
    }
}

// ---------------------------------------------------------------------------
// Faults, recovery, SimConfig, RunSpec
// ---------------------------------------------------------------------------

fn encode_fault_action(action: FaultAction) -> Json {
    Json::Str(
        match action {
            FaultAction::Down => "down",
            FaultAction::Up => "up",
            FaultAction::LinkDrop => "link_drop",
        }
        .into(),
    )
}

fn decode_fault_action(s: &str) -> Result<FaultAction, ApiError> {
    match s {
        "down" => Ok(FaultAction::Down),
        "up" => Ok(FaultAction::Up),
        "link_drop" => Ok(FaultAction::LinkDrop),
        other => err(format!("unknown fault action '{other}'")),
    }
}

/// Encode a fault model as a tagged object (`kind`: `none` / `plan` /
/// `poisson`).
pub fn encode_fault_model(model: &FaultModel) -> Json {
    match model {
        FaultModel::None => obj(vec![("kind", Json::Str("none".into()))]),
        FaultModel::Plan(plan) => {
            let events = plan
                .events()
                .iter()
                .map(|e| {
                    obj(vec![
                        ("time", Json::Num(e.time)),
                        ("worker", Json::Num(e.worker as f64)),
                        ("action", encode_fault_action(e.action)),
                    ])
                })
                .collect();
            obj(vec![
                ("kind", Json::Str("plan".into())),
                ("events", Json::Arr(events)),
            ])
        }
        FaultModel::Poisson(p) => obj(vec![
            ("kind", Json::Str("poisson".into())),
            ("mttf", Json::Num(p.mttf)),
            ("mttr", opt_json_num(p.mttr)),
            ("link_mtbf", opt_json_num(p.link_mtbf)),
            ("horizon", Json::Num(p.horizon)),
            ("seed", Json::Num(p.seed as f64)),
        ]),
    }
}

/// Decode a fault model (see [`encode_fault_model`]).
pub fn decode_fault_model(v: &Json) -> Result<FaultModel, ApiError> {
    match str_field(v, "kind")? {
        "none" => Ok(FaultModel::None),
        "plan" => {
            let events = v
                .get("events")
                .and_then(Json::arr)
                .ok_or_else(|| ApiError("fault plan needs 'events' array".into()))?;
            let mut plan = FaultPlan::new();
            for e in events {
                let time = num_field(e, "time")?;
                if !(time.is_finite() && time >= 0.0) {
                    return err("fault time must be finite and non-negative");
                }
                plan = plan.add(
                    time,
                    usize_field_or(e, "worker", usize::MAX)?,
                    decode_fault_action(str_field(e, "action")?)?,
                );
            }
            Ok(FaultModel::Plan(plan))
        }
        "poisson" => {
            let mttf = num_field(v, "mttf")?;
            let horizon = num_field(v, "horizon")?;
            if !(mttf.is_finite() && mttf > 0.0 && horizon.is_finite() && horizon > 0.0) {
                return err("poisson faults need finite positive 'mttf' and 'horizon'");
            }
            Ok(FaultModel::Poisson(PoissonFaults {
                mttf,
                mttr: opt_num_field(v, "mttr")?,
                link_mtbf: opt_num_field(v, "link_mtbf")?,
                horizon,
                seed: u64_field_or(v, "seed", 0)?,
            }))
        }
        other => err(format!("unknown fault model '{other}'")),
    }
}

/// Encode a recovery policy with all fields explicit.
pub fn encode_recovery(r: &RecoveryConfig) -> Json {
    obj(vec![
        ("initial_backoff", Json::Num(r.initial_backoff)),
        ("backoff_factor", Json::Num(r.backoff_factor)),
        ("factor", Json::Num(r.factor)),
        ("min_chunk", Json::Num(r.min_chunk)),
        (
            "divergence_threshold",
            r.divergence_threshold.map_or(Json::Null, Json::Num),
        ),
        (
            "divergence_min_samples",
            Json::Num(r.divergence_min_samples as f64),
        ),
    ])
}

/// Decode a recovery policy; missing fields take the Rust defaults, and
/// the literal `true` selects the defaults wholesale.
pub fn decode_recovery(v: &Json) -> Result<RecoveryConfig, ApiError> {
    if v.bool() == Some(true) {
        return Ok(RecoveryConfig::default());
    }
    let d = RecoveryConfig::default();
    let divergence_threshold = opt_num_field(v, "divergence_threshold")?;
    if let Some(t) = divergence_threshold {
        if !(t.is_finite() && t > 0.0) {
            return err("recovery divergence_threshold must be positive and finite");
        }
    }
    let divergence_min_samples = usize_field_or(
        v,
        "divergence_min_samples",
        d.divergence_min_samples as usize,
    )?;
    if divergence_min_samples == 0 || divergence_min_samples > u32::MAX as usize {
        return err("recovery divergence_min_samples must be in 1..=2^32-1");
    }
    Ok(RecoveryConfig {
        initial_backoff: opt_num_field(v, "initial_backoff")?.unwrap_or(d.initial_backoff),
        backoff_factor: opt_num_field(v, "backoff_factor")?.unwrap_or(d.backoff_factor),
        factor: opt_num_field(v, "factor")?.unwrap_or(d.factor),
        min_chunk: opt_num_field(v, "min_chunk")?.unwrap_or(d.min_chunk),
        divergence_threshold,
        divergence_min_samples: divergence_min_samples as u32,
    })
}

/// Encode a speed-revelation model as a tagged object (`kind`: `declared`
/// / `stochastic` / `sandbag` / `adversarial`).
pub fn encode_speed_model(model: &SpeedModel) -> Json {
    match *model {
        SpeedModel::Declared => obj(vec![("kind", Json::Str("declared".into()))]),
        SpeedModel::Stochastic { spread, seed } => obj(vec![
            ("kind", Json::Str("stochastic".into())),
            ("spread", Json::Num(spread)),
            ("seed", Json::Num(seed as f64)),
        ]),
        SpeedModel::Sandbagged {
            fraction,
            slowdown,
            seed,
        } => obj(vec![
            ("kind", Json::Str("sandbag".into())),
            ("fraction", Json::Num(fraction)),
            ("slowdown", Json::Num(slowdown)),
            ("seed", Json::Num(seed as f64)),
        ]),
        SpeedModel::Adversarial { fraction, slowdown } => obj(vec![
            ("kind", Json::Str("adversarial".into())),
            ("fraction", Json::Num(fraction)),
            ("slowdown", Json::Num(slowdown)),
        ]),
    }
}

/// Decode a speed-revelation model (see [`encode_speed_model`]).
pub fn decode_speed_model(v: &Json) -> Result<SpeedModel, ApiError> {
    let model = match str_field(v, "kind")? {
        "declared" | "identity" => SpeedModel::Declared,
        "stochastic" => SpeedModel::Stochastic {
            spread: num_field(v, "spread")?,
            seed: u64_field_or(v, "seed", 0)?,
        },
        "sandbag" => SpeedModel::Sandbagged {
            fraction: num_field(v, "fraction")?,
            slowdown: num_field(v, "slowdown")?,
            seed: u64_field_or(v, "seed", 0)?,
        },
        "adversarial" => SpeedModel::Adversarial {
            fraction: num_field(v, "fraction")?,
            slowdown: num_field(v, "slowdown")?,
        },
        other => return err(format!("unknown speed model '{other}'")),
    };
    // Validate ranges here (client input must not reach the engine's
    // panicking asserts).
    let ok = match model {
        SpeedModel::Declared => true,
        SpeedModel::Stochastic { spread, .. } => spread.is_finite() && (0.0..1.0).contains(&spread),
        SpeedModel::Sandbagged {
            fraction, slowdown, ..
        }
        | SpeedModel::Adversarial { fraction, slowdown } => {
            fraction.is_finite()
                && (0.0..=1.0).contains(&fraction)
                && slowdown.is_finite()
                && slowdown >= 1.0
        }
    };
    if !ok {
        return err("speed model parameters out of range (spread in [0,1), fraction in [0,1], slowdown >= 1)");
    }
    Ok(model)
}

fn trace_mode_name(mode: TraceMode) -> &'static str {
    match mode {
        TraceMode::Off => "off",
        TraceMode::MetricsOnly => "metrics",
        TraceMode::Full => "full",
    }
}

fn decode_trace_mode(s: &str) -> Result<TraceMode, ApiError> {
    match s {
        "off" => Ok(TraceMode::Off),
        "metrics" => Ok(TraceMode::MetricsOnly),
        "full" => Ok(TraceMode::Full),
        other => err(format!("unknown trace mode '{other}'")),
    }
}

/// Encode an engine configuration with every field explicit.
pub fn encode_sim_config(c: &SimConfig) -> Json {
    obj(vec![
        (
            "trace_mode",
            Json::Str(trace_mode_name(c.trace_mode).into()),
        ),
        ("max_events", Json::Num(c.max_events as f64)),
        (
            "max_concurrent_sends",
            Json::Num(c.max_concurrent_sends as f64),
        ),
        ("uplink_capacity", opt_json_num(c.uplink_capacity)),
        ("output_ratio", Json::Num(c.output_ratio)),
        ("faults", encode_fault_model(&c.faults)),
        ("queue", Json::Str(c.queue_backend.name().into())),
        ("audit", Json::Bool(c.audit)),
        ("speeds", encode_speed_model(&c.speeds)),
    ])
}

/// Decode an engine configuration; missing fields take
/// [`SimConfig::default`].
pub fn decode_sim_config(v: &Json) -> Result<SimConfig, ApiError> {
    let d = SimConfig::default();
    let queue_backend = match v.get("queue") {
        None | Some(Json::Null) => d.queue_backend,
        Some(q) => {
            let name = q
                .str()
                .ok_or_else(|| ApiError("field 'queue' must be a string".into()))?;
            QueueBackend::parse(name)
                .ok_or_else(|| ApiError(format!("unknown queue backend '{name}'")))?
        }
    };
    let trace_mode = match v.get("trace_mode") {
        None | Some(Json::Null) => d.trace_mode,
        Some(t) => decode_trace_mode(
            t.str()
                .ok_or_else(|| ApiError("field 'trace_mode' must be a string".into()))?,
        )?,
    };
    Ok(SimConfig {
        trace_mode,
        max_events: u64_field_or(v, "max_events", d.max_events)?,
        max_concurrent_sends: usize_field_or(v, "max_concurrent_sends", d.max_concurrent_sends)?,
        uplink_capacity: opt_num_field(v, "uplink_capacity")?,
        output_ratio: opt_num_field(v, "output_ratio")?.unwrap_or(d.output_ratio),
        faults: match v.get("faults") {
            None | Some(Json::Null) => FaultModel::None,
            Some(f) => decode_fault_model(f)?,
        },
        queue_backend,
        audit: bool_field_or(v, "audit", d.audit)?,
        speeds: match v.get("speeds") {
            None | Some(Json::Null) => SpeedModel::Declared,
            Some(s) => decode_speed_model(s)?,
        },
    })
}

/// Encode a [`RunSpec`] (without any attached prototype — that is derived
/// state, not wire state).
pub fn encode_run_spec(spec: &RunSpec) -> Json {
    obj(vec![
        ("scheduler", encode_scheduler(&spec.kind)),
        ("seed", Json::Num(spec.seed as f64)),
        ("reps", Json::Num(spec.reps as f64)),
        ("config", encode_sim_config(&spec.config)),
        (
            "recovery",
            match &spec.recovery {
                Some(r) => encode_recovery(r),
                None => Json::Null,
            },
        ),
    ])
}

/// Decode a [`RunSpec`]; `seed` defaults to 0, `reps` to 1, `config` to
/// the engine defaults and `recovery` to off.
pub fn decode_run_spec(v: &Json) -> Result<RunSpec, ApiError> {
    let scheduler = v
        .get("scheduler")
        .ok_or_else(|| ApiError("run spec needs a 'scheduler'".into()))?;
    let reps = u64_field_or(v, "reps", 1)?;
    if reps == 0 {
        return err("field 'reps' must be >= 1");
    }
    let mut spec = RunSpec::new(decode_scheduler(scheduler)?)
        .seed(u64_field_or(v, "seed", 0)?)
        .reps(reps);
    if let Some(c) = v.get("config") {
        if *c != Json::Null {
            spec = spec.config(decode_sim_config(c)?);
        }
    }
    match v.get("recovery") {
        None | Some(Json::Null) | Some(Json::Bool(false)) => {}
        Some(r) => spec = spec.recovering(decode_recovery(r)?),
    }
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded `POST /plan` body: plan `scheduler` for `w_total` units on
/// `platform`.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The star platform to plan for.
    pub platform: Platform,
    /// Total divisible workload (units).
    pub w_total: f64,
    /// The scheduling algorithm.
    pub kind: SchedulerKind,
}

impl PlanRequest {
    /// Decode a request body.
    pub fn from_json_str(body: &str) -> Result<Self, ApiError> {
        let v = parse_finite_json(body)?;
        let w_total = num_field(&v, "w_total")?;
        if !(w_total.is_finite() && w_total > 0.0) {
            return err("'w_total' must be finite and positive");
        }
        Ok(PlanRequest {
            platform: decode_platform(
                v.get("platform")
                    .ok_or_else(|| ApiError("missing field 'platform'".into()))?,
            )?,
            w_total,
            kind: decode_scheduler(
                v.get("scheduler")
                    .ok_or_else(|| ApiError("missing field 'scheduler'".into()))?,
            )?,
        })
    }

    /// The canonicalized request — two requests meaning the same plan (any
    /// field order, the homogeneous shorthand expanded) produce the same
    /// string. This is the plan cache key.
    pub fn cache_key(&self) -> String {
        obj(vec![
            ("platform", encode_platform(&self.platform)),
            ("scheduler", encode_scheduler(&self.kind)),
            ("w_total", Json::Num(self.w_total)),
        ])
        .canonical()
    }
}

/// A decoded `POST /simulate` body: a full scenario plus the [`RunSpec`]
/// to execute on it.
#[derive(Debug, Clone)]
pub struct SimulateRequest {
    /// Platform + workload + error model.
    pub scenario: Scenario,
    /// What to run.
    pub spec: RunSpec,
}

impl SimulateRequest {
    /// Decode a request body.
    pub fn from_json_str(body: &str) -> Result<Self, ApiError> {
        let v = parse_finite_json(body)?;
        let w_total = num_field(&v, "w_total")?;
        if !(w_total.is_finite() && w_total > 0.0) {
            return err("'w_total' must be finite and positive");
        }
        let platform = decode_platform(
            v.get("platform")
                .ok_or_else(|| ApiError("missing field 'platform'".into()))?,
        )?;
        let error_model = match v.get("error_model") {
            None | Some(Json::Null) => ErrorModel::None,
            Some(m) => decode_error_model(m)?,
        };
        let mut spec = decode_run_spec(
            v.get("run")
                .ok_or_else(|| ApiError("missing field 'run'".into()))?,
        )?;
        // A top-level speed-revelation block, parallel to `error_model`
        // (also accepted inside `run.config.speeds`; the top level wins).
        if let Some(s) = v.get("speeds") {
            if *s != Json::Null {
                spec.config.speeds = decode_speed_model(s)?;
            }
        }
        Ok(SimulateRequest {
            scenario: Scenario {
                platform,
                w_total,
                error_model,
                cost_profile: None,
                temporal_noise: None,
            },
            spec,
        })
    }

    /// Canonicalized request body (cache/debug identity; `/simulate`
    /// responses are deterministic in this string).
    pub fn canonical(&self) -> String {
        obj(vec![
            ("platform", encode_platform(&self.scenario.platform)),
            ("w_total", Json::Num(self.scenario.w_total)),
            (
                "error_model",
                encode_error_model(&self.scenario.error_model),
            ),
            ("run", encode_run_spec(&self.spec)),
        ])
        .canonical()
    }

    /// The canonicalized *scenario* (platform + workload + error model,
    /// without the run spec) — the engine-shard routing key. Two requests
    /// that run on the same engine state produce the same string, so
    /// affinity routing sends them to the same shard.
    pub fn scenario_key(&self) -> String {
        obj(vec![
            ("platform", encode_platform(&self.scenario.platform)),
            ("w_total", Json::Num(self.scenario.w_total)),
            (
                "error_model",
                encode_error_model(&self.scenario.error_model),
            ),
        ])
        .canonical()
    }

    /// The plan-cache key of this request's (platform, workload,
    /// scheduler) triple — `/simulate` uses it to reuse a prototype planned
    /// by an earlier `/plan`.
    pub fn plan_key(&self) -> String {
        PlanRequest {
            platform: self.scenario.platform.clone(),
            w_total: self.scenario.w_total,
            kind: self.spec.kind,
        }
        .cache_key()
    }
}

/// A decoded `POST /jobs` body: a platform + error model shared by every
/// job, an arbitration policy, and the job list (each with its own
/// release time, size, scheduler and optional recovery policy).
#[derive(Debug, Clone)]
pub struct JobsRequest {
    /// Platform + error model (the scenario's `w_total` is the jobs'
    /// total work; `execute_jobs` ignores it).
    pub scenario: Scenario,
    /// Jobs × policy × seed × engine configuration.
    pub spec: MultiRunSpec,
}

impl JobsRequest {
    /// Decode a request body:
    ///
    /// ```json
    /// {"platform": {...}, "error_model": {...}?, "policy": "fifo"?,
    ///  "seed": 0?, "config": {...}?,
    ///  "jobs": [{"release": 0, "size": 400, "scheduler": {...},
    ///            "recovery": {...}?}, ...]}
    /// ```
    pub fn from_json_str(body: &str) -> Result<Self, ApiError> {
        let v = parse_finite_json(body)?;
        let platform = decode_platform(
            v.get("platform")
                .ok_or_else(|| ApiError("missing field 'platform'".into()))?,
        )?;
        let error_model = match v.get("error_model") {
            None | Some(Json::Null) => ErrorModel::None,
            Some(m) => decode_error_model(m)?,
        };
        let policy = match v.get("policy") {
            None | Some(Json::Null) => MultiPolicy::FifoExclusive,
            Some(p) => {
                let name = p
                    .str()
                    .ok_or_else(|| ApiError("field 'policy' must be a string".into()))?;
                MultiPolicy::parse(name).ok_or_else(|| {
                    ApiError(format!(
                        "unknown policy '{name}' (expected fifo, round_robin or fair_share)"
                    ))
                })?
            }
        };
        let mut spec = MultiRunSpec::new(policy).seed(u64_field_or(&v, "seed", 0)?);
        if let Some(c) = v.get("config") {
            if *c != Json::Null {
                spec = spec.config(decode_sim_config(c)?);
            }
        }
        let jobs = v
            .get("jobs")
            .and_then(Json::arr)
            .ok_or_else(|| ApiError("missing field 'jobs' (array)".into()))?;
        if jobs.is_empty() {
            return err("'jobs' must contain at least one job");
        }
        for j in jobs {
            let release = opt_num_field(j, "release")?.unwrap_or(0.0);
            if !(release.is_finite() && release >= 0.0) {
                return err("job 'release' must be finite and non-negative");
            }
            let size = num_field(j, "size")?;
            if !(size.is_finite() && size > 0.0) {
                return err("job 'size' must be finite and positive");
            }
            let kind = decode_scheduler(
                j.get("scheduler")
                    .ok_or_else(|| ApiError("each job needs a 'scheduler'".into()))?,
            )?;
            let mut job = MultiJob::new(release, size, kind);
            match j.get("recovery") {
                None | Some(Json::Null) | Some(Json::Bool(false)) => {}
                Some(r) => job = job.recovering(decode_recovery(r)?),
            }
            spec = spec.job(job);
        }
        let w_total = spec.total_work();
        Ok(JobsRequest {
            scenario: Scenario {
                platform,
                w_total,
                error_model,
                cost_profile: None,
                temporal_noise: None,
            },
            spec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumr::FaultPlan;

    fn round_trip_spec(spec: &RunSpec) {
        let encoded = encode_run_spec(spec);
        let canonical = encoded.canonical();
        let reparsed = parse_json(&canonical).expect("canonical form parses");
        let decoded = decode_run_spec(&reparsed).expect("decodes");
        assert_eq!(&decoded, spec, "round trip changed the spec");
        // Canonicalization is a fixed point: re-encoding the decoded spec
        // yields the identical canonical string.
        assert_eq!(encode_run_spec(&decoded).canonical(), canonical);
    }

    #[test]
    fn run_spec_round_trips_unchanged() {
        // The pinned case: a spec exercising every optional field.
        let spec = RunSpec::new(SchedulerKind::Rumr(RumrConfig {
            error_estimate: Some(0.25),
            phase1_fraction: Some(0.7),
            out_of_order: false,
            factor: 1.5,
            error_aware_bound: false,
        }))
        .seed(42)
        .reps(3)
        .trace_mode(TraceMode::MetricsOnly)
        .queue(QueueBackend::Heap)
        .max_events(1_000_000)
        .faults(FaultModel::Plan(
            FaultPlan::new()
                .crash_recover(60.0, 2, 15.0)
                .link_drop(80.0, 1),
        ))
        .recovering(RecoveryConfig {
            initial_backoff: 2.0,
            backoff_factor: 3.0,
            factor: 2.5,
            min_chunk: 0.5,
            divergence_threshold: Some(0.4),
            divergence_min_samples: 5,
        });
        round_trip_spec(&spec);

        // And the all-defaults spec for every scheduler kind.
        for kind in [
            SchedulerKind::Rumr(RumrConfig::default()),
            SchedulerKind::Umr,
            SchedulerKind::Mi { installments: 4 },
            SchedulerKind::Factoring,
            SchedulerKind::Fsc { error: 0.3 },
            SchedulerKind::EqualStatic,
            SchedulerKind::SelfScheduling { unit: 5.0 },
            SchedulerKind::HetUmr,
            SchedulerKind::AdaptiveRumr,
            SchedulerKind::HetRumr(RumrConfig::with_known_error(0.2)),
            SchedulerKind::OneRound,
            SchedulerKind::Gss,
            SchedulerKind::Tss,
        ] {
            round_trip_spec(&RunSpec::new(kind).seed(7));
        }

        // Poisson faults round-trip too.
        round_trip_spec(
            &RunSpec::new(SchedulerKind::Umr).faults(FaultModel::Poisson(PoissonFaults {
                mttf: 60.0,
                mttr: Some(15.0),
                link_mtbf: None,
                horizon: 2000.0,
                seed: 11,
            })),
        );
    }

    #[test]
    fn canonical_string_is_pinned() {
        // Schema drift guard: the exact canonical bytes of a minimal spec.
        let spec = RunSpec::new(SchedulerKind::Umr);
        assert_eq!(
            encode_run_spec(&spec).canonical(),
            "{\"config\":{\"audit\":false,\"faults\":{\"kind\":\"none\"},\
             \"max_concurrent_sends\":1,\"max_events\":50000000,\"output_ratio\":0,\
             \"queue\":\"calendar\",\"speeds\":{\"kind\":\"declared\"},\
             \"trace_mode\":\"off\",\"uplink_capacity\":null},\
             \"recovery\":null,\"reps\":1,\"scheduler\":{\"kind\":\"umr\"},\"seed\":0}"
        );
    }

    #[test]
    fn plan_request_canonicalization_unifies_spellings() {
        let explicit = PlanRequest::from_json_str(
            r#"{"w_total": 1000, "scheduler": {"kind": "umr"},
                "platform": {"workers": [
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1},
                  {"speed": 1, "bandwidth": 15, "comp_latency": 0.2, "net_latency": 0.1}
                ]}}"#,
        )
        .unwrap();
        let shorthand = PlanRequest::from_json_str(
            r#"{"platform": {"homogeneous": {"n": 10, "ratio": 1.5,
                "comp_latency": 0.2, "net_latency": 0.1}},
                "scheduler": {"kind": "umr"}, "w_total": 1000}"#,
        )
        .unwrap();
        assert_eq!(explicit.cache_key(), shorthand.cache_key());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(PlanRequest::from_json_str("not json").is_err());
        assert!(PlanRequest::from_json_str("{}").is_err());
        assert!(PlanRequest::from_json_str(
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.1, "net_latency": 0.1}},
                "scheduler": {"kind": "warp_drive"}, "w_total": 100}"#
        )
        .is_err());
        assert!(SimulateRequest::from_json_str(
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.1, "net_latency": 0.1}},
                "w_total": -5, "run": {"scheduler": {"kind": "umr"}}}"#
        )
        .is_err());
        // reps = 0 is invalid, not a panic.
        assert!(SimulateRequest::from_json_str(
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.1, "net_latency": 0.1}},
                "w_total": 100,
                "run": {"scheduler": {"kind": "umr"}, "reps": 0}}"#
        )
        .is_err());
    }

    #[test]
    fn jobs_request_decodes_and_validates() {
        let body = r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
            "comp_latency": 0.2, "net_latency": 0.1}},
            "policy": "round_robin", "seed": 3,
            "jobs": [
              {"release": 0, "size": 400, "scheduler": {"kind": "factoring"}},
              {"size": 200, "scheduler": {"kind": "umr"}, "recovery": true}
            ]}"#;
        let req = JobsRequest::from_json_str(body).expect("decodes");
        assert_eq!(req.spec.policy, MultiPolicy::RoundRobin);
        assert_eq!(req.spec.seed, 3);
        assert_eq!(req.spec.jobs.len(), 2);
        assert_eq!(req.spec.jobs[1].release, 0.0, "release defaults to 0");
        assert!(req.spec.jobs[1].recovery.is_some());
        assert_eq!(req.scenario.w_total, 600.0);

        // Bad inputs refuse with a message, never panic.
        for bad in [
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.2, "net_latency": 0.1}}, "jobs": []}"#,
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.2, "net_latency": 0.1}},
                "jobs": [{"release": -1, "size": 10, "scheduler": {"kind": "umr"}}]}"#,
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.2, "net_latency": 0.1}},
                "jobs": [{"size": 10, "scheduler": {"kind": "umr"}}],
                "policy": "lifo"}"#,
            r#"{"platform": {"homogeneous": {"n": 4, "ratio": 1.5,
                "comp_latency": 0.2, "net_latency": 0.1}},
                "jobs": [{"size": 1e999, "scheduler": {"kind": "umr"}}]}"#,
        ] {
            assert!(JobsRequest::from_json_str(bad).is_err(), "{bad}");
        }
    }
}
