//! Service instrumentation, rendered as Prometheus text exposition.
//!
//! All counters live behind one [`Metrics`] value shared (via `Arc`)
//! between the acceptor, the worker pool, the engine shards, and the
//! `/metrics` handler. Atomics cover the hot single-value counters; the
//! per-`(endpoint, status)` request counts, per-endpoint latency
//! aggregates, and per-shard request counts sit behind short-lived
//! poison-recovering mutexes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sync::lock;

#[derive(Debug, Default, Clone)]
struct Latency {
    sum: f64,
    count: u64,
    max: f64,
}

/// Shared service counters. All methods take `&self`; the type is
/// `Send + Sync`.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    latency: Mutex<BTreeMap<String, Latency>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sim_cache_hits: AtomicU64,
    sim_cache_misses: AtomicU64,
    rejected: AtomicU64,
    queue_depth: AtomicI64,
    accept_errors: AtomicU64,
    shard_requests: Mutex<BTreeMap<usize, u64>>,
    fastpath_analytic: AtomicU64,
    fastpath_engine: AtomicU64,
    fastpath_audited: AtomicU64,
    fastpath_divergences: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record a completed request: endpoint label, response status, wall
    /// time spent handling it.
    pub fn observe(&self, endpoint: &str, status: u16, seconds: f64) {
        *lock(&self.requests)
            .entry((endpoint.to_string(), status))
            .or_insert(0) += 1;
        let mut latency = lock(&self.latency);
        let entry = latency.entry(endpoint.to_string()).or_default();
        entry.sum += seconds;
        entry.count += 1;
        entry.max = entry.max.max(seconds);
    }

    /// Count a plan-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a plan-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Plan-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Count a `/simulate` response-cache hit.
    pub fn sim_cache_hit(&self) {
        self.sim_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a `/simulate` response-cache miss.
    pub fn sim_cache_miss(&self) {
        self.sim_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// `/simulate` response-cache hits so far.
    pub fn sim_cache_hits(&self) -> u64 {
        self.sim_cache_hits.load(Ordering::Relaxed)
    }

    /// Count a connection rejected with 503 because the queue was full.
    pub fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Rejections so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// A connection entered the request queue.
    pub fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection left the request queue.
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count a failed `accept()` on the listener.
    pub fn accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Accept failures so far.
    pub fn accept_errors_total(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Count an answer served from the analytic fast path (oracle closed
    /// form, no engine run).
    pub fn fastpath_analytic(&self) {
        self.fastpath_analytic.fetch_add(1, Ordering::Relaxed);
    }

    /// Analytic fast-path answers so far.
    pub fn fastpath_analytic_total(&self) -> u64 {
        self.fastpath_analytic.load(Ordering::Relaxed)
    }

    /// Count a fast-path-eligible endpoint falling back to the engine
    /// (no exact oracle, or the request disqualified itself).
    pub fn fastpath_engine(&self) {
        self.fastpath_engine.fetch_add(1, Ordering::Relaxed);
    }

    /// Engine-path answers on fast-path-eligible endpoints so far.
    pub fn fastpath_engine_total(&self) -> u64 {
        self.fastpath_engine.load(Ordering::Relaxed)
    }

    /// Count an analytic answer re-run through the engine by the sampled
    /// audit.
    pub fn fastpath_audited(&self) {
        self.fastpath_audited.fetch_add(1, Ordering::Relaxed);
    }

    /// Audited analytic answers so far.
    pub fn fastpath_audited_total(&self) -> u64 {
        self.fastpath_audited.load(Ordering::Relaxed)
    }

    /// Count an audit divergence: the engine re-run disagreed with the
    /// analytic answer beyond the oracle tolerance.
    pub fn fastpath_divergence(&self) {
        self.fastpath_divergences.fetch_add(1, Ordering::Relaxed);
    }

    /// Audit divergences so far. Nonzero means the closed forms and the
    /// engine disagree — a correctness bug, fatal in CI.
    pub fn fastpath_divergences_total(&self) -> u64 {
        self.fastpath_divergences.load(Ordering::Relaxed)
    }

    /// Count a `/simulate` request dispatched to engine shard `shard`.
    pub fn observe_shard(&self, shard: usize) {
        *lock(&self.shard_requests).entry(shard).or_insert(0) += 1;
    }

    /// Per-shard dispatch counts (shard index → requests routed there).
    pub fn shard_requests(&self) -> BTreeMap<usize, u64> {
        lock(&self.shard_requests).clone()
    }

    /// Render the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# HELP dls_serve_requests_total Requests handled, by endpoint and status.\n");
        out.push_str("# TYPE dls_serve_requests_total counter\n");
        for ((endpoint, status), count) in lock(&self.requests).iter() {
            let _ = writeln!(
                out,
                "dls_serve_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}"
            );
        }

        out.push_str("# HELP dls_serve_request_seconds Request handling latency, by endpoint.\n");
        out.push_str("# TYPE dls_serve_request_seconds summary\n");
        for (endpoint, l) in lock(&self.latency).iter() {
            let _ = writeln!(
                out,
                "dls_serve_request_seconds_sum{{endpoint=\"{endpoint}\"}} {}",
                l.sum
            );
            let _ = writeln!(
                out,
                "dls_serve_request_seconds_count{{endpoint=\"{endpoint}\"}} {}",
                l.count
            );
            let _ = writeln!(
                out,
                "dls_serve_request_seconds_max{{endpoint=\"{endpoint}\"}} {}",
                l.max
            );
        }

        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        out.push_str("# HELP dls_serve_plan_cache_hits_total Plan cache hits.\n");
        out.push_str("# TYPE dls_serve_plan_cache_hits_total counter\n");
        let _ = writeln!(out, "dls_serve_plan_cache_hits_total {hits}");
        out.push_str("# HELP dls_serve_plan_cache_misses_total Plan cache misses.\n");
        out.push_str("# TYPE dls_serve_plan_cache_misses_total counter\n");
        let _ = writeln!(out, "dls_serve_plan_cache_misses_total {misses}");
        out.push_str(
            "# HELP dls_serve_plan_cache_hit_ratio Hits / (hits + misses), 0 when idle.\n",
        );
        out.push_str("# TYPE dls_serve_plan_cache_hit_ratio gauge\n");
        let _ = writeln!(
            out,
            "dls_serve_plan_cache_hit_ratio {}",
            ratio(hits, misses)
        );

        let sim_hits = self.sim_cache_hits.load(Ordering::Relaxed);
        let sim_misses = self.sim_cache_misses.load(Ordering::Relaxed);
        out.push_str("# HELP dls_serve_sim_cache_hits_total Simulate response cache hits.\n");
        out.push_str("# TYPE dls_serve_sim_cache_hits_total counter\n");
        let _ = writeln!(out, "dls_serve_sim_cache_hits_total {sim_hits}");
        out.push_str("# HELP dls_serve_sim_cache_misses_total Simulate response cache misses.\n");
        out.push_str("# TYPE dls_serve_sim_cache_misses_total counter\n");
        let _ = writeln!(out, "dls_serve_sim_cache_misses_total {sim_misses}");
        out.push_str("# HELP dls_serve_sim_cache_hit_ratio Hits / (hits + misses), 0 when idle.\n");
        out.push_str("# TYPE dls_serve_sim_cache_hit_ratio gauge\n");
        let _ = writeln!(
            out,
            "dls_serve_sim_cache_hit_ratio {}",
            ratio(sim_hits, sim_misses)
        );

        out.push_str("# HELP dls_serve_queue_depth Connections waiting in the request queue.\n");
        out.push_str("# TYPE dls_serve_queue_depth gauge\n");
        let _ = writeln!(
            out,
            "dls_serve_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed).max(0)
        );

        out.push_str(
            "# HELP dls_serve_rejected_total Connections rejected with 503 (queue full).\n",
        );
        out.push_str("# TYPE dls_serve_rejected_total counter\n");
        let _ = writeln!(
            out,
            "dls_serve_rejected_total {}",
            self.rejected.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP dls_serve_accept_errors_total Failed accept() calls on the listener.\n",
        );
        out.push_str("# TYPE dls_serve_accept_errors_total counter\n");
        let _ = writeln!(
            out,
            "dls_serve_accept_errors_total {}",
            self.accept_errors.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP dls_serve_fastpath_analytic_total Answers served from the analytic fast path.\n",
        );
        out.push_str("# TYPE dls_serve_fastpath_analytic_total counter\n");
        let _ = writeln!(
            out,
            "dls_serve_fastpath_analytic_total {}",
            self.fastpath_analytic.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP dls_serve_fastpath_engine_total Engine-path answers on fast-path-eligible endpoints.\n",
        );
        out.push_str("# TYPE dls_serve_fastpath_engine_total counter\n");
        let _ = writeln!(
            out,
            "dls_serve_fastpath_engine_total {}",
            self.fastpath_engine.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP dls_serve_fastpath_audited_total Analytic answers re-run through the engine by the sampled audit.\n",
        );
        out.push_str("# TYPE dls_serve_fastpath_audited_total counter\n");
        let _ = writeln!(
            out,
            "dls_serve_fastpath_audited_total {}",
            self.fastpath_audited.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP dls_serve_fastpath_divergence_total Audit re-runs that disagreed with the analytic answer.\n",
        );
        out.push_str("# TYPE dls_serve_fastpath_divergence_total counter\n");
        let _ = writeln!(
            out,
            "dls_serve_fastpath_divergence_total {}",
            self.fastpath_divergences.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP dls_serve_shard_requests_total Simulate requests dispatched, by engine shard.\n",
        );
        out.push_str("# TYPE dls_serve_shard_requests_total counter\n");
        for (shard, count) in lock(&self.shard_requests).iter() {
            let _ = writeln!(
                out,
                "dls_serve_shard_requests_total{{shard=\"{shard}\"}} {count}"
            );
        }
        out
    }
}

fn ratio(hits: u64, misses: u64) -> f64 {
    if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_counts_and_ratio() {
        let m = Metrics::new();
        m.observe("/plan", 200, 0.010);
        m.observe("/plan", 200, 0.030);
        m.observe("/simulate", 400, 0.001);
        m.cache_hit();
        m.cache_miss();
        m.cache_miss();
        m.sim_cache_hit();
        m.sim_cache_hit();
        m.sim_cache_miss();
        m.rejected();
        m.enqueued();
        m.accept_error();
        m.observe_shard(1);
        m.observe_shard(1);
        m.observe_shard(3);
        m.fastpath_analytic();
        m.fastpath_analytic();
        m.fastpath_engine();
        m.fastpath_audited();
        m.fastpath_divergence();
        let text = m.render();
        assert!(text.contains("dls_serve_requests_total{endpoint=\"/plan\",status=\"200\"} 2"));
        assert!(text.contains("dls_serve_requests_total{endpoint=\"/simulate\",status=\"400\"} 1"));
        assert!(text.contains("dls_serve_request_seconds_count{endpoint=\"/plan\"} 2"));
        assert!(text.contains("dls_serve_request_seconds_max{endpoint=\"/plan\"} 0.03"));
        assert!(text.contains("dls_serve_plan_cache_hits_total 1"));
        assert!(text.contains("dls_serve_plan_cache_misses_total 2"));
        assert!(text.contains("dls_serve_plan_cache_hit_ratio 0.3333333333333333"));
        assert!(text.contains("dls_serve_sim_cache_hits_total 2"));
        assert!(text.contains("dls_serve_sim_cache_misses_total 1"));
        assert!(text.contains("dls_serve_sim_cache_hit_ratio 0.6666666666666666"));
        assert!(text.contains("dls_serve_queue_depth 1"));
        assert!(text.contains("dls_serve_rejected_total 1"));
        assert!(text.contains("dls_serve_accept_errors_total 1"));
        assert!(text.contains("dls_serve_shard_requests_total{shard=\"1\"} 2"));
        assert!(text.contains("dls_serve_shard_requests_total{shard=\"3\"} 1"));
        assert_eq!(m.shard_requests().get(&1), Some(&2));
        assert!(text.contains("dls_serve_fastpath_analytic_total 2"));
        assert!(text.contains("dls_serve_fastpath_engine_total 1"));
        assert!(text.contains("dls_serve_fastpath_audited_total 1"));
        assert!(text.contains("dls_serve_fastpath_divergence_total 1"));
        assert_eq!(m.fastpath_analytic_total(), 2);
        assert_eq!(m.fastpath_divergences_total(), 1);
    }
}
