//! Poison-recovering lock helpers.
//!
//! Every shared mutex in the service (connection queue, job table, caches,
//! metrics maps, shard queues) is locked through these helpers instead of
//! `.lock().unwrap()`. A worker that panics while holding a lock poisons
//! it; with bare `unwrap()` the next locker panics too, and the cascade
//! takes down the acceptor and every other worker. The service's shared
//! state is a queue/table of independent entries — a panic mid-update
//! cannot leave it logically corrupt in a way that is worse than losing
//! the panicking request — so recovering the guard and continuing is
//! strictly better than dying.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout` that recovers a poisoned guard instead of
/// propagating the panic. The timeout result is dropped: every caller
/// re-checks its predicate in a loop anyway.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(e) => e.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(7);
        // Poison it: panic while holding the guard (in another thread so
        // this test survives).
        let _ = std::thread::spawn({
            let m: &'static Mutex<i32> = Box::leak(Box::new(Mutex::new(0)));
            move || {
                let _g = m.lock().unwrap();
                panic!("poison");
            }
        })
        .join();
        assert_eq!(*lock(&m), 7, "clean mutex still locks");

        let poisoned: &'static Mutex<i32> = Box::leak(Box::new(Mutex::new(42)));
        let _ = std::thread::spawn(move || {
            let _g = poisoned.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(poisoned.lock().is_err(), "mutex is poisoned");
        assert_eq!(*lock(poisoned), 42, "helper recovers the guard");
    }
}
