//! `dls-serve` — scheduling as a service.
//!
//! A std-only (no registry dependencies, `std::net` sockets, hand-rolled
//! JSON via [`dls_experiments::json`]) multi-threaded HTTP/1.1 service that
//! turns the planner/DES stack into an online resource-allocation decision
//! service. Endpoints:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /plan` | platform + workload + scheduler → chunk schedule + oracle prediction |
//! | `POST /simulate` | one full DES run (optional faults/recovery) → metrics + audit findings |
//! | `GET /metrics` | Prometheus text: request counts/latencies, cache counters, shard routing, queue depth |
//! | `GET /healthz` | liveness probe |
//!
//! Internals: a blocking acceptor feeds a bounded connection queue
//! (backpressure: 503 + `Retry-After` when full; accept failures are
//! counted and retried with backoff), a fixed worker-thread pool serves
//! persistent HTTP/1.1 connections (keep-alive with in-order pipelining —
//! see [`http`]), an LRU plan cache keyed by the canonicalized request
//! (cached plans clone their [`rumr::SchedulerPrototype`] instead of
//! re-running the planner), a `/simulate` response cache keyed by the
//! canonical request body (sound because responses are byte-deterministic
//! in it), and per-core engine shards with scenario-affinity routing so
//! same-scenario requests reuse warm [`rumr::ScenarioRunner`] state no
//! matter which connection carried them. The service consumes only the
//! unified [`rumr::RunSpec`] API. See `docs/SERVICE.md` for the wire
//! schema.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;
mod shard;
mod sync;

pub use api::{ApiError, PlanRequest, SimulateRequest};
pub use cache::{CachedPlan, LruCache, PlanCache, SimCache};
pub use metrics::Metrics;
pub use server::{Server, ServerConfig};
