//! `dls-serve` — scheduling as a service.
//!
//! A std-only (no registry dependencies, `std::net` sockets, hand-rolled
//! JSON via [`dls_experiments::json`]) multi-threaded HTTP/1.1 service that
//! turns the planner/DES stack into an online resource-allocation decision
//! service. Endpoints:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /plan` | platform + workload + scheduler → chunk schedule + oracle prediction |
//! | `POST /simulate` | one full DES run (optional faults/recovery) → metrics + audit findings |
//! | `GET /metrics` | Prometheus text: request counts/latencies, cache hit ratio, queue depth |
//! | `GET /healthz` | liveness probe |
//!
//! Internals: a fixed worker-thread pool drains a bounded request queue
//! (backpressure: 503 + `Retry-After` when full), an LRU plan cache keyed
//! by the canonicalized request (cached plans clone their
//! [`rumr::SchedulerPrototype`] instead of re-running the planner), and
//! per-thread engine reuse across consecutive same-scenario requests via
//! [`rumr::ScenarioRunner`]. The service consumes only the unified
//! [`rumr::RunSpec`] API. See `docs/SERVICE.md` for the wire schema.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;

pub use api::{ApiError, PlanRequest, SimulateRequest};
pub use cache::{CachedPlan, PlanCache};
pub use metrics::Metrics;
pub use server::{Server, ServerConfig};
