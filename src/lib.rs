//! Facade crate for the divisible-workload scheduling suite.
//!
//! This package exists to host the repository-level `examples/` and `tests/`
//! directories; the actual functionality lives in the workspace crates and is
//! re-exported here for convenience:
//!
//! * [`rumr`] — high-level public API (platform specs, scheduler selection,
//!   simulation entry points) and the RUMR algorithm itself.
//! * [`dls_sim`] — the discrete-event master–worker simulator.
//! * [`dls_sched`] — all scheduling algorithms (UMR, RUMR, MI-x, Factoring,
//!   FSC, static baselines).
//! * [`dls_numerics`] — numerical substrate (root finding, dense LU,
//!   distributions, statistics).
//! * [`dls_workloads`] — synthetic application workload generators.
//! * [`dls_experiments`] — the paper-reproduction sweep harness.

pub use dls_experiments as experiments;
pub use dls_numerics as numerics;
pub use dls_sched as sched;
pub use dls_sim as sim;
pub use dls_workloads as workloads;
pub use rumr;
