//! `dls` — command-line front end for the divisible-load scheduling suite.
//!
//! ```text
//! dls simulate --algo rumr --workers 20 --ratio 1.8 --clat 0.3 --nlat 0.1 \
//!              --error 0.25 [--workload 1000] [--seed 42] [--gantt]
//! dls compare  --workers 20 --ratio 1.8 --clat 0.3 --nlat 0.1 --error 0.25 \
//!              [--reps 25]
//! dls plan     --algo umr --workers 10 --ratio 1.5 --clat 0.4 --nlat 0.2
//! dls list
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use dls_sim::TraceMetrics;
use rumr::{RunSpec, Scenario, SchedulerKind, TraceMode, UmrInputs, UmrSchedule};

const USAGE: &str = "usage:
  dls simulate --algo <name> [platform flags] [--seed N] [--gantt] [--trace-csv PATH]
  dls compare  [platform flags] [--reps N]
  dls plan     --algo umr|mi-<x>|one-round [platform flags]
  dls list

platform flags (defaults in brackets):
  --workers N   worker count [20]       --ratio R    B = R*N [1.6]
  --clat S      computation latency [0.2]
  --nlat S      communication latency [0.1]
  --error E     prediction error magnitude [0.25]
  --workload W  total workload units [1000]

algorithms: rumr, rumr-adaptive, umr, mi-1..mi-9, factoring, fsc, gss, tss,
            one-round, equal-static, self-sched";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument '{arg}'"));
        };
        if name == "gantt" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        None => Ok(default),
    }
}

fn flag_usize(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        None => Ok(default),
    }
}

fn scenario_from(flags: &HashMap<String, String>) -> Result<Scenario, String> {
    let workers = flag_usize(flags, "workers", 20)?;
    if workers == 0 {
        return Err("--workers must be positive".into());
    }
    let ratio = flag_f64(flags, "ratio", 1.6)?;
    let clat = flag_f64(flags, "clat", 0.2)?;
    let nlat = flag_f64(flags, "nlat", 0.1)?;
    let error = flag_f64(flags, "error", 0.25)?;
    let workload = flag_f64(flags, "workload", 1000.0)?;
    let mut s = Scenario::table1(workers, ratio, clat, nlat, error);
    s.w_total = workload;
    Ok(s)
}

fn algo_from(name: &str, error: f64) -> Result<SchedulerKind, String> {
    if let Some(x) = name.strip_prefix("mi-") {
        let installments: usize = x.parse().map_err(|e| format!("mi-<x>: {e}"))?;
        return Ok(SchedulerKind::Mi { installments });
    }
    Ok(match name {
        "rumr" => SchedulerKind::rumr_known_error(error),
        "rumr-adaptive" => SchedulerKind::AdaptiveRumr,
        "umr" => SchedulerKind::Umr,
        "factoring" => SchedulerKind::Factoring,
        "fsc" => SchedulerKind::Fsc { error },
        "gss" => SchedulerKind::Gss,
        "tss" => SchedulerKind::Tss,
        "one-round" => SchedulerKind::OneRound,
        "equal-static" => SchedulerKind::EqualStatic,
        "self-sched" => SchedulerKind::SelfScheduling { unit: 1.0 },
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let scenario = scenario_from(flags)?;
    let error = scenario.error();
    let algo = algo_from(
        flags.get("algo").map(String::as_str).unwrap_or("rumr"),
        error,
    )?;
    let seed = flag_usize(flags, "seed", 42)? as u64;
    let result = scenario
        .execute(&RunSpec::new(algo).seed(seed).trace_mode(TraceMode::Full))
        .map_err(|e| format!("simulation failed: {e}"))?;
    let n = scenario.platform.num_workers();
    let trace = result.trace.as_ref().expect("trace recorded");
    let metrics = TraceMetrics::from_trace(trace, n);

    println!("algorithm        : {}", algo.label());
    println!("makespan         : {:.3} s", result.makespan);
    println!("chunks dispatched: {}", result.num_chunks);
    println!(
        "mean utilization : {:.1} %",
        result.mean_utilization() * 100.0
    );
    println!(
        "link utilization : {:.1} %",
        metrics.link_utilization * 100.0
    );
    println!(
        "worker idle time : {:.3} s (across {} gaps)",
        metrics.total_gap_time(),
        metrics.gaps.len()
    );
    if flags.contains_key("gantt") {
        println!("\n{}", trace.gantt(n, 100));
    }
    if let Some(path) = flags.get("trace-csv") {
        std::fs::write(path, trace.to_csv()).map_err(|e| format!("--trace-csv: {e}"))?;
        println!("trace written to : {path}");
    }
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let scenario = scenario_from(flags)?;
    let error = scenario.error();
    let reps = flag_usize(flags, "reps", 25)? as u64;
    println!(
        "N = {}, B = {:.1}, cLat = {}, nLat = {}, error = {}, W = {} ({} reps)\n",
        scenario.platform.num_workers(),
        scenario.platform.worker(0).bandwidth,
        scenario.platform.worker(0).comp_latency,
        scenario.platform.worker(0).net_latency,
        error,
        scenario.w_total,
        reps
    );
    println!("{:<16} {:>12}", "algorithm", "makespan (s)");
    for kind in [
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 3 },
        SchedulerKind::OneRound,
        SchedulerKind::Factoring,
        SchedulerKind::Tss,
        SchedulerKind::EqualStatic,
    ] {
        let mean = scenario
            .execute_mean(&RunSpec::new(kind).reps(reps))
            .map_err(|e| format!("{kind}: {e}"))?;
        println!("{:<16} {:>12.2}", kind.label(), mean);
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let scenario = scenario_from(flags)?;
    let algo = flags.get("algo").map(String::as_str).unwrap_or("umr");
    match algo {
        "umr" => {
            let inputs = UmrInputs::from_platform(&scenario.platform, scenario.w_total)
                .map_err(|e| e.to_string())?;
            let s = UmrSchedule::solve(inputs).map_err(|e| e.to_string())?;
            println!(
                "UMR: {} rounds, predicted makespan {:.3} s",
                s.num_rounds(),
                s.predicted_makespan()
            );
            println!("per-worker chunk sizes by round:");
            for (j, c) in s.round_chunks().iter().enumerate() {
                println!("  round {j:>2}: {c:>10.3} units");
            }
        }
        "one-round" => {
            let s = rumr::sched::OneRoundSchedule::solve(&scenario.platform, scenario.w_total)
                .map_err(|e| e.to_string())?;
            println!(
                "one-round: {} workers used, predicted makespan {:.3} s",
                s.chunks().len(),
                s.predicted_makespan()
            );
            for (i, c) in s.chunks().iter().enumerate() {
                println!("  worker {i:>2}: {c:>10.3} units");
            }
        }
        mi if mi.starts_with("mi-") => {
            let x: usize = mi[3..].parse().map_err(|e| format!("mi-<x>: {e}"))?;
            let s = rumr::sched::MiSchedule::solve(&scenario.platform, scenario.w_total, x)
                .map_err(|e| e.to_string())?;
            println!(
                "MI-{}: predicted makespan {:.3} s (latency-free model)",
                s.installments(),
                s.predicted_makespan()
            );
            for (j, round) in s.chunks().iter().enumerate() {
                let sizes: Vec<String> = round.iter().map(|c| format!("{c:.2}")).collect();
                println!("  installment {j}: [{}]", sizes.join(", "));
            }
        }
        other => {
            return Err(format!(
                "plan supports umr, one-round, mi-<x>; got '{other}'"
            ))
        }
    }
    Ok(())
}

fn cmd_list() {
    println!("available algorithms:");
    for (name, desc) in [
        ("rumr", "RUMR with known error (the paper's contribution)"),
        ("rumr-adaptive", "RUMR with online error estimation"),
        ("umr", "Uniform Multi-Round (increasing chunks)"),
        ("mi-<x>", "multi-installment with x installments"),
        ("one-round", "latency-aware optimal single round"),
        ("factoring", "Hummel '92 factoring (decreasing chunks)"),
        ("fsc", "fixed-size chunking (Kruskal-Weiss)"),
        ("gss", "guided self-scheduling"),
        ("tss", "trapezoid self-scheduling"),
        ("equal-static", "one round of equal chunks"),
        ("self-sched", "unit-granularity self-scheduling"),
    ] {
        println!("  {name:<14} {desc}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "simulate" | "compare" | "plan" => match parse_flags(rest) {
            Ok(flags) => match command.as_str() {
                "simulate" => cmd_simulate(&flags),
                "compare" => cmd_compare(&flags),
                _ => cmd_plan(&flags),
            },
            Err(e) => Err(e),
        },
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> HashMap<String, String> {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn flag_parsing() {
        let f = flags(&["--workers", "12", "--error", "0.4", "--gantt"]);
        assert_eq!(f.get("workers").unwrap(), "12");
        assert_eq!(f.get("error").unwrap(), "0.4");
        assert_eq!(f.get("gantt").unwrap(), "true");

        assert!(parse_flags(&["--workers".to_string()]).is_err());
        assert!(parse_flags(&["oops".to_string()]).is_err());
    }

    #[test]
    fn scenario_construction() {
        let s = scenario_from(&flags(&["--workers", "12", "--ratio", "2.0"])).unwrap();
        assert_eq!(s.platform.num_workers(), 12);
        assert!((s.platform.worker(0).bandwidth - 24.0).abs() < 1e-12);
        assert!(scenario_from(&flags(&["--workers", "0"])).is_err());
        assert!(scenario_from(&flags(&["--ratio", "abc"])).is_err());
    }

    #[test]
    fn algorithm_lookup() {
        assert_eq!(algo_from("umr", 0.3).unwrap().label(), "UMR");
        assert_eq!(algo_from("rumr", 0.3).unwrap().label(), "RUMR");
        assert_eq!(algo_from("mi-4", 0.3).unwrap().label(), "MI-4");
        assert_eq!(algo_from("tss", 0.3).unwrap().label(), "TSS");
        assert!(algo_from("nope", 0.3).is_err());
        assert!(algo_from("mi-x", 0.3).is_err());
    }

    #[test]
    fn simulate_and_compare_run_end_to_end() {
        cmd_simulate(&flags(&["--workers", "4", "--error", "0.2", "--seed", "1"])).unwrap();
        cmd_compare(&flags(&["--workers", "4", "--reps", "2"])).unwrap();
        cmd_plan(&flags(&["--algo", "umr", "--workers", "4"])).unwrap();
        cmd_plan(&flags(&["--algo", "mi-2", "--workers", "4"])).unwrap();
        cmd_plan(&flags(&["--algo", "one-round", "--workers", "4"])).unwrap();
        assert!(cmd_plan(&flags(&["--algo", "factoring"])).is_err());
    }
}
